"""Static protocol checker: implementation vs the docs/PROTOCOL.md spec.

Extraction is purely syntactic, over three groups of sources:

* ``core/agent_protocol.py`` — the message vocabulary (top-level classes);
* ``core/storage_agent.py`` — the agent side: ``isinstance(message, X)``
  dispatch arms are *receives*, constructor calls of message classes are
  *sends*;
* the client side (``core/distribution.py``, ``core/namespace.py``,
  ``core/client.py``, ``core/streaming.py``, ``core/session.py``) — same
  extraction, plus which replies are awaited under a ``recv_wait``
  timeout guard (directly in a predicate lambda, or passed into a helper
  that wraps ``recv_wait``).

The verification then checks, against :mod:`repro.check.spec`:

* the spec only names defined messages, and every defined message is in
  the spec (no undocumented vocabulary);
* every spec request is sent by the client and received by the agent
  ("send without matching receive"), every spec reply is sent by the
  agent and awaited by the client;
* no side sends a message the spec does not allow it to send;
* replies over the lossy transport are awaited with a timeout guard;
* the state machines themselves are sound: all states reachable, no trap
  states, and every state that awaits a *reply* has a timeout edge
  (servers may await requests forever);
* machine/code conformance in both directions: every ``send``/``recv``
  edge of a machine has evidence in its side's sources, and every
  extracted send/receive appears as an edge of some machine of that
  side — no unimplemented spec edge, no spec-free code edge.  Both ends
  of every exchange must be covered by a machine of the right side.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .findings import Finding
from .spec import (
    EXCHANGES,
    MACHINES,
    StateMachine,
    reply_message_names,
    spec_message_names,
)

__all__ = ["check_protocol", "extract_side", "extract_vocabulary",
           "ProtocolSide"]

#: Client-side sources, relative to the package root.
CLIENT_SOURCES = (
    "core/distribution.py",
    "core/namespace.py",
    "core/client.py",
    "core/streaming.py",
    "core/session.py",
)
AGENT_SOURCE = "core/storage_agent.py"
VOCABULARY_SOURCE = "core/agent_protocol.py"


@dataclass
class ProtocolSide:
    """What one side of the protocol does, as extracted from source."""

    sends: dict[str, int] = field(default_factory=dict)      # name -> line
    receives: dict[str, int] = field(default_factory=dict)   # name -> line
    guarded: dict[str, int] = field(default_factory=dict)    # timeout waits

    def merge(self, other: "ProtocolSide") -> None:
        for mine, theirs in ((self.sends, other.sends),
                             (self.receives, other.receives),
                             (self.guarded, other.guarded)):
            for name, line in theirs.items():
                mine.setdefault(name, line)


def extract_vocabulary(path: Path) -> dict[str, int]:
    """Message class name -> definition line, from agent_protocol.py."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return {node.name: node.lineno for node in tree.body
            if isinstance(node, ast.ClassDef)}


def _isinstance_targets(node: ast.Call) -> list[str]:
    """Class names tested by an ``isinstance(x, C)`` / ``(C1, C2)`` call."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "isinstance"
            and len(node.args) == 2):
        return []
    target = node.args[1]
    candidates = target.elts if isinstance(target, ast.Tuple) else [target]
    return [piece.id for piece in candidates if isinstance(piece, ast.Name)]


def _is_recv_wait(node: ast.Call) -> bool:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    return name == "recv_wait"


def extract_side(paths: Iterable[Path],
                 vocabulary: frozenset[str]) -> ProtocolSide:
    """Extract sends/receives/guarded-waits from a set of source files."""
    side = ProtocolSide()
    for path in paths:
        if not path.exists():
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
        side.merge(_extract_module(tree, vocabulary))
    return side


def _enclosing_functions(tree: ast.Module) -> dict[int, str]:
    """Map each AST node id to the name of its enclosing function."""
    owner: dict[int, str] = {}

    def visit(node: ast.AST, current: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node.name
        owner[id(node)] = current or ""
        for child in ast.iter_child_nodes(node):
            visit(child, current)

    visit(tree, None)
    return owner


def _extract_module(tree: ast.Module,
                    vocabulary: frozenset[str]) -> ProtocolSide:
    side = ProtocolSide()
    owner = _enclosing_functions(tree)
    # Pass 1: direct evidence, and which functions wrap recv_wait.
    recv_wait_wrappers: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for name in _isinstance_targets(node):
            if name in vocabulary:
                side.receives.setdefault(name, node.lineno)
        func = node.func
        if isinstance(func, ast.Name) and func.id in vocabulary:
            side.sends.setdefault(func.id, node.lineno)
        if _is_recv_wait(node):
            if owner.get(id(node)):
                recv_wait_wrappers.add(owner[id(node)])
            for argument in list(node.args) + [kw.value for kw
                                               in node.keywords]:
                if isinstance(argument, ast.Lambda):
                    for inner in ast.walk(argument):
                        if isinstance(inner, ast.Call):
                            for name in _isinstance_targets(inner):
                                if name in vocabulary:
                                    side.guarded.setdefault(
                                        name, node.lineno)
    # Pass 2: message classes handed to a recv_wait-wrapping helper are
    # awaited under that helper's timeout (e.g. namespace._transact).
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if callee not in recv_wait_wrappers:
            continue
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(argument, ast.Name) and argument.id in vocabulary:
                side.guarded.setdefault(argument.id, node.lineno)
                side.receives.setdefault(argument.id, node.lineno)
    return side


# -- machine soundness --------------------------------------------------------


def _check_machine(machine: StateMachine, spec_path: Path) -> list[Finding]:
    findings: list[Finding] = []

    def finding(message: str) -> Finding:
        return Finding(rule_id="protocol-machine", path=spec_path, line=1,
                       message=f"[{machine.name}] {message}")

    # Reachability from the initial state.
    reachable = {machine.initial}
    frontier = [machine.initial]
    while frontier:
        state = frontier.pop()
        for transition in machine.edges_from(state):
            if transition.target not in reachable:
                reachable.add(transition.target)
                frontier.append(transition.target)
    for state in sorted(machine.states - reachable):
        findings.append(finding(f"state {state} is unreachable from "
                                f"{machine.initial}"))

    # No trap states: a terminal must be reachable from every state.
    for state in sorted(reachable - machine.terminals):
        seen = {state}
        frontier = [state]
        escaped = False
        while frontier and not escaped:
            current = frontier.pop()
            for transition in machine.edges_from(current):
                if transition.target in machine.terminals:
                    escaped = True
                    break
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
        if not escaped:
            findings.append(finding(
                f"state {state} cannot reach a terminal state"))

    # Events must be well-formed.
    for transition in machine.transitions:
        event = transition.event
        if not (event in ("timeout", "internal")
                or event.startswith(("send ", "recv "))):
            findings.append(finding(
                f"malformed event {event!r} on edge "
                f"{transition.source} -> {transition.target}"))

    # Lossy transport: a state that awaits a *reply* needs a timeout
    # edge.  A server's listen state awaits requests and may block
    # forever; only reply waits can wedge a transfer on loss.
    replies = reply_message_names()
    for state in sorted(machine.states - machine.terminals):
        edges = machine.edges_from(state)
        awaits_reply = any(
            t.event.startswith("recv ")
            and t.event.split(" ", 1)[1] in replies
            for t in edges)
        has_timeout = any(t.event == "timeout" for t in edges)
        if awaits_reply and not has_timeout:
            findings.append(finding(
                f"state {state} awaits a reply but has no timeout edge"))
        if not edges and state not in machine.terminals:
            findings.append(finding(
                f"non-terminal state {state} has no outgoing edges"))
    return findings


# -- machine/code conformance -------------------------------------------------


def _machine_edge_events(side_name: str) -> tuple[dict[str, str],
                                                  dict[str, str]]:
    """(sends, receives): message name -> machine name, for one side."""
    sends: dict[str, str] = {}
    receives: dict[str, str] = {}
    for machine in MACHINES:
        if machine.side != side_name:
            continue
        for transition in machine.transitions:
            if transition.event.startswith("send "):
                sends.setdefault(transition.event.split(" ", 1)[1],
                                 machine.name)
            elif transition.event.startswith("recv "):
                receives.setdefault(transition.event.split(" ", 1)[1],
                                    machine.name)
    return sends, receives


def _check_conformance(client: ProtocolSide, agent: ProtocolSide,
                       defined: frozenset[str],
                       spec_path: Path) -> list[Finding]:
    """Spec machines vs extracted code edges, in both directions."""
    findings: list[Finding] = []

    def conformance(message: str) -> Finding:
        return Finding(rule_id="protocol-conformance", path=spec_path,
                       line=1, message=message)

    sides = (("client", client), ("agent", agent))
    for side_name, code in sides:
        spec_sends, spec_receives = _machine_edge_events(side_name)
        # Direction 1: every machine edge is implemented.
        for name, machine_name in sorted(spec_sends.items()):
            if name in defined and name not in code.sends:
                findings.append(conformance(
                    f"machine {machine_name} has edge 'send {name}' but "
                    f"the {side_name} sources never construct {name}"))
        for name, machine_name in sorted(spec_receives.items()):
            if name in defined and name not in code.receives:
                findings.append(conformance(
                    f"machine {machine_name} has edge 'recv {name}' but "
                    f"the {side_name} sources never dispatch on {name}"))
        # Direction 2: every code edge appears in some machine.
        for name in sorted(set(code.sends) & defined):
            if name not in spec_sends:
                findings.append(conformance(
                    f"{side_name} code sends {name} but no {side_name} "
                    f"machine has a 'send {name}' edge"))
        for name in sorted(set(code.receives) & defined):
            if name not in spec_receives:
                findings.append(conformance(
                    f"{side_name} code dispatches on {name} but no "
                    f"{side_name} machine has a 'recv {name}' edge"))

    # Client timeout edges are implemented as recv_wait guards: a state
    # with a timeout edge that also awaits messages must await them
    # under a guard.
    for machine in MACHINES:
        if machine.side != "client":
            continue
        for state in machine.states:
            edges = machine.edges_from(state)
            if not any(t.event == "timeout" for t in edges):
                continue
            for transition in edges:
                if not transition.event.startswith("recv "):
                    continue
                name = transition.event.split(" ", 1)[1]
                if name in defined and name not in client.guarded:
                    findings.append(conformance(
                        f"machine {machine.name} state {state} pairs a "
                        f"timeout edge with 'recv {name}' but the client "
                        f"never awaits {name} under a recv_wait guard"))

    # Every exchange end is covered by a machine of the right side.
    client_sends, client_receives = _machine_edge_events("client")
    agent_sends, agent_receives = _machine_edge_events("agent")
    for exchange in EXCHANGES:
        if exchange.request not in client_sends:
            findings.append(conformance(
                f"no client machine sends {exchange.request}"))
        if exchange.request not in agent_receives:
            findings.append(conformance(
                f"no agent machine receives {exchange.request}"))
        for reply in exchange.replies:
            if reply not in agent_sends:
                findings.append(conformance(
                    f"no agent machine sends {reply}"))
            if reply not in client_receives:
                findings.append(conformance(
                    f"no client machine receives {reply}"))
    return findings


# -- the full check -----------------------------------------------------------


def check_protocol(root: Path) -> list[Finding]:
    """Verify the protocol implementation under ``root`` (package dir).

    ``root`` is the ``repro`` package directory; returns all findings
    (empty when implementation, spec and machines agree).
    """
    root = Path(root)
    vocabulary_path = root / VOCABULARY_SOURCE
    if not vocabulary_path.exists():
        # Not a repro checkout (e.g. linting a fixture tree): nothing to do.
        return []
    findings: list[Finding] = []
    vocabulary = extract_vocabulary(vocabulary_path)
    defined = frozenset(vocabulary)
    spec_path = Path(__file__).resolve().parent / "spec.py"

    def spec_finding(message: str, rule: str = "protocol-spec") -> Finding:
        return Finding(rule_id=rule, path=spec_path, line=1, message=message)

    # Spec vocabulary vs defined messages, both directions.
    referenced = spec_message_names()
    for name in sorted(referenced - defined):
        findings.append(spec_finding(
            f"spec references undefined message class {name}"))
    for name in sorted(defined - referenced):
        findings.append(spec_finding(
            f"message class {name} (agent_protocol.py:{vocabulary[name]}) "
            "is not covered by the protocol spec"))

    # Machine soundness.
    for machine in MACHINES:
        findings.extend(_check_machine(machine, spec_path))

    client = extract_side((root / rel for rel in CLIENT_SOURCES), defined)
    agent = extract_side([root / AGENT_SOURCE], defined)
    agent_path = root / AGENT_SOURCE

    findings.extend(_check_conformance(client, agent, defined, spec_path))

    allowed_requests = {e.request for e in EXCHANGES}
    allowed_replies = {name for e in EXCHANGES for name in e.replies}

    for exchange in EXCHANGES:
        request = exchange.request
        if request not in defined:
            continue  # already reported against the spec
        if request not in client.sends:
            findings.append(spec_finding(
                f"spec request {request} is never sent by the client",
                rule="protocol-transition"))
        if request not in agent.receives:
            findings.append(Finding(
                rule_id="protocol-transition", path=agent_path, line=1,
                message=f"client sends {request} but the agent has no "
                        "matching receive arm"))
        for reply in exchange.replies:
            if reply not in agent.sends:
                findings.append(Finding(
                    rule_id="protocol-transition", path=agent_path, line=1,
                    message=f"spec reply {reply} (to {request}) is never "
                            "sent by the agent"))
            if reply not in client.receives:
                findings.append(spec_finding(
                    f"agent reply {reply} is never awaited by the client",
                    rule="protocol-transition"))
            elif exchange.timeout_required and reply not in client.guarded:
                findings.append(spec_finding(
                    f"client waits for {reply} without a timeout guard "
                    "(lossy transport requires one)",
                    rule="protocol-timeout"))

    # Neither side may emit vocabulary the spec does not allow it to.
    for name in sorted(set(client.sends) - allowed_requests):
        findings.append(spec_finding(
            f"client sends {name}, which the spec does not list as a "
            "request", rule="protocol-transition"))
    for name in sorted(set(agent.sends) - allowed_replies):
        findings.append(Finding(
            rule_id="protocol-transition", path=agent_path,
            line=agent.sends[name],
            message=f"agent sends {name}, which the spec does not list "
                    "as a reply"))
    return findings

"""Zero-copy aliasing lints: ``repro check --aliasing``.

PR 4 rebuilt the hot data path on borrowed buffers: memoryview slices
thread through region assembly, stripe-image parity and the packetiser,
and the DES kernel recycles processed Timeout/Release/Request events
through bounded free lists.  Two invariants make that safe:

1. a borrowed view must not outlive the next mutation (or recycling) of
   its backing buffer, and
2. a recycled event must not be touched through a stale reference.

This module is the static half of ``--aliasing``: a linear AST dataflow
analysis per function that tracks *view-producing expressions* —
``memoryview(...)``, slicing of known view or bytearray locals, and
attribute loads from the :data:`VIEW_ATTRIBUTES` annotation table
(``DataPacket.payload``-style borrowed fields) — and reports three rules:

* ``view-escape`` — a borrowed view stored on ``self``, appended to a
  ``self``-owned container, or *used* (returned, passed, subscripted)
  past a mutation horizon of its backing buffer.  Horizons are inferred
  from subscript writes, mutator method calls (``extend``/``clear``/…),
  ``flush``/``flush_p`` calls (which may swap self-owned buffers),
  rebinding of the backing name (buffer swap) and free-list appends.
* ``hidden-copy`` — a silent flattening copy on a hot path:
  ``bytes(view)``, ``view + ...`` concatenation, ``.ljust``-family
  padding, or a per-byte Python loop over a view.  Hot paths are the
  files in :data:`HOT_PATH_SUFFIXES` plus any module whose docstring
  contains ``repro: hot-path``.  The sanctioned spelling for a
  *deliberate* copy is ``view.tobytes()``, which is never flagged.
* ``pool-leak`` — a pooled event reference retained (loaded) after the
  statement that appended it to a free list, inside the same suite:
  past that boundary the free list may re-arm the object under the
  holder's feet.

``# repro: allow[aliasing]`` suppresses all three on a line (each
specific id also works); the analysis is deliberately linear (no branch
joins, loop back-edges ignored) so only straight-line hazards fire —
high confidence, zero findings on the current tree.

The runtime half (poisoned free lists, generation-stamped buffers) lives
in :mod:`repro.check.sanitize`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from .findings import Finding
from .lint import Rule

__all__ = [
    "ALIAS_RULES",
    "ALIAS_RULE_GROUP",
    "HOT_PATH_MARKER",
    "HOT_PATH_SUFFIXES",
    "VIEW_ATTRIBUTES",
    "alias_rule_registry",
    "analyze_aliasing",
]

#: Allow-comment group id: ``# repro: allow[aliasing]`` covers every
#: aliasing rule (see LintEngine suppression handling).
ALIAS_RULE_GROUP = "aliasing"

#: Files whose bytes-handling is hot enough that a silent copy is a bug,
#: not a style choice (the PR 4 zero-copy path, see docs/PERFORMANCE.md).
HOT_PATH_SUFFIXES = (
    "des/engine.py",
    "core/parity.py",
    "core/distribution.py",
    "core/buffered.py",
    "simdisk/filesystem.py",
)

#: A module docstring containing this marker opts the file into the
#: ``hidden-copy`` pass regardless of its path (used by fixtures and by
#: future hot modules that live elsewhere).
HOT_PATH_MARKER = "repro: hot-path"

#: Annotation table: attribute names whose loads yield *borrowed* views
#: of a buffer owned by someone else.  ``DataPacket.payload`` is a
#: zero-copy slice of the writer's buffer; ``Chunk.data``-style fields
#: expose the owner's backing store.  Storing such a load beyond the
#: borrowing frame is an escape.
VIEW_ATTRIBUTES = {
    "payload": "packet payloads are zero-copy slices of the sender's buffer",
    "data": "Chunk.data-style fields expose the owner's backing buffer",
}

#: Methods that mutate their receiver in place (invalidate borrowed
#: views of it).
_MUTATOR_METHODS = frozenset({
    "append", "clear", "extend", "frombytes", "insert", "pop", "remove",
    "reverse", "sort", "truncate", "write",
})

#: Methods that may swap or drain a self-owned buffer wholesale.
_FLUSH_METHODS = frozenset({"flush", "flush_p"})

#: Padding methods that build a copy byte-by-byte; preallocate instead.
_PADDING_METHODS = frozenset({"center", "ljust", "rjust", "zfill"})


def _is_hot(tree: ast.Module, path: Path) -> bool:
    """True when ``path`` is on the hot list or opted in by docstring."""
    posix = Path(path).as_posix()
    if any(posix.endswith(suffix) for suffix in HOT_PATH_SUFFIXES):
        return True
    doc = ast.get_docstring(tree)
    return bool(doc and HOT_PATH_MARKER in doc)


def _key(node: ast.AST) -> Optional[str]:
    """Canonical dotted key for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _key(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


class _ViewInfo:
    """One tracked view local: where it borrows from, whether stale."""

    __slots__ = ("origin", "stale")

    def __init__(self, origin: Optional[str]):
        self.origin = origin  # backing-buffer key, or None when unknown
        self.stale: Optional[str] = None  # staleness reason once horizon hit

    @property
    def borrowed(self) -> bool:
        """True when the backing buffer is not owned by ``self``."""
        return self.origin is None or not self.origin.startswith("self.")


class _FunctionScan:
    """Linear dataflow scan of one function body.

    Statements are processed in source order; branch bodies are scanned
    sequentially with shared state (no joins) and loop back-edges are
    ignored, so only straight-line hazards produce findings.
    """

    def __init__(self, path: Path, hot: bool, findings: list):
        self.path = path
        self.hot = hot
        self.findings = findings
        self.views: dict[str, _ViewInfo] = {}
        self.buffers: set[str] = set()  # known local bytearray buffers
        self._reported: set[tuple] = set()

    # -- reporting ----------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        dedupe = (rule_id, message)
        if dedupe in self._reported:
            return
        self._reported.add(dedupe)
        self.findings.append(Finding(
            rule_id=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            message=message,
        ))

    # -- classification -----------------------------------------------------

    def _view_origin(self, node: ast.AST) -> Optional[str]:
        """Backing-buffer key when ``node`` is a view expression.

        Returns the origin key (possibly ``"<unknown>"`` mapped to None
        by callers) or raises nothing; a non-view expression returns the
        sentinel ``_NOT_A_VIEW``.
        """
        if isinstance(node, ast.Name):
            info = self.views.get(node.id)
            if info is not None:
                return info.origin
            return _NOT_A_VIEW
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == "memoryview"
                    and node.args):
                return _key(node.args[0])
            return _NOT_A_VIEW
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id in self.views:
                    return self.views[base.id].origin
                if base.id in self.buffers:
                    return base.id
                return _NOT_A_VIEW
            origin = self._view_origin(base)
            return origin if origin is not _NOT_A_VIEW else _NOT_A_VIEW
        if isinstance(node, ast.Attribute):
            if node.attr in VIEW_ATTRIBUTES and isinstance(node.ctx, ast.Load):
                return None  # borrowed from an external owner
            return _NOT_A_VIEW
        return _NOT_A_VIEW

    def _is_view(self, node: ast.AST) -> bool:
        return self._view_origin(node) is not _NOT_A_VIEW

    def _describe(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return repr(node.id)
        try:
            return repr(ast.unparse(node))
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<view expression>"

    # -- staling ------------------------------------------------------------

    def _stale_origin(self, key: Optional[str], reason: str,
                      keep: Optional[str] = None) -> None:
        if key is None:
            return
        for name, info in self.views.items():
            if name == keep:
                continue
            if info.stale is None and info.origin == key:
                info.stale = reason

    def _stale_self_views(self, reason: str) -> None:
        for info in self.views.values():
            if info.stale is None and info.origin is not None \
                    and info.origin.startswith("self."):
                info.stale = reason

    # -- entry points -------------------------------------------------------

    def run(self, func: ast.AST) -> None:
        self._suite(func.body, {})

    def _suite(self, stmts, retired: dict) -> None:
        for stmt in stmts:
            self._stmt(stmt, retired)

    # -- statements ---------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, retired: dict) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are scanned on their own
        if retired:
            self._check_retired(stmt, retired)
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value, stmt, retired)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._handle_assign([stmt.target], stmt.value, stmt, retired)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_value(stmt.value)
            key = _key(stmt.target)
            if key is not None:
                self._stale_origin(key, "mutated by augmented assignment")
        elif isinstance(stmt, ast.Expr):
            self._scan_value(stmt.value)
            self._call_effects(stmt.value, retired)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_value(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._scan_value(stmt.test)
            # Mutually exclusive arms: each scans a private copy of the
            # retired map so a free-list append in one branch does not
            # taint the other (or the code after the If).
            self._suite(stmt.body, dict(retired))
            self._suite(stmt.orelse, dict(retired))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_for_iter(stmt)
            self._clear_binding(stmt.target, retired)
            self._suite(stmt.body, dict(retired))
            self._suite(stmt.orelse, dict(retired))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_value(item.context_expr)
                if item.optional_vars is not None:
                    self._clear_binding(item.optional_vars, retired)
            self._suite(stmt.body, retired)
        elif isinstance(stmt, ast.Try):
            self._suite(stmt.body, retired)
            for handler in stmt.handlers:
                self._suite(handler.body, retired)
            self._suite(stmt.orelse, retired)
            self._suite(stmt.finalbody, retired)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_value(child)

    def _handle_assign(self, targets, value: ast.expr, stmt: ast.stmt,
                       retired: dict) -> None:
        self._scan_value(value)
        self._call_effects(value, retired)
        origin = self._view_origin(value)
        value_is_view = origin is not _NOT_A_VIEW

        # Escape: a borrowed view stored on self (attribute or into a
        # self-owned container slot) outlives the borrowing frame.
        if value_is_view:
            info_probe = _ViewInfo(origin)
            if info_probe.borrowed:
                for target in targets:
                    root = self._root_name(target)
                    if root == "self" and not isinstance(target, ast.Name):
                        self._report(
                            "view-escape", stmt,
                            f"borrowed view {self._describe(value)} (backing "
                            f"buffer {origin or 'external'!r}) stored on self "
                            "outlives its borrow; copy with .tobytes() or "
                            "consume it before returning")

        for target in targets:
            self._clear_binding(target, retired)
            # Rebinding a backing name is a buffer swap: views of the old
            # object dangle.  Subscript stores mutate the base in place.
            if isinstance(target, ast.Subscript):
                base_key = _key(target.value)
                keep = (target.value.id
                        if isinstance(target.value, ast.Name)
                        and target.value.id in self.views else None)
                self._stale_origin(base_key,
                                   "written through a subscript store",
                                   keep=keep)
            else:
                key = _key(target)
                if key is not None and not (isinstance(target, ast.Name)
                                            and value_is_view):
                    self._stale_origin(key, "rebound (buffer swap)")

        # Bind the new state for single-name targets.
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            name = targets[0].id
            self.views.pop(name, None)
            self.buffers.discard(name)
            if value_is_view:
                self.views[name] = _ViewInfo(origin)
            elif self._is_bytearray_ctor(value):
                self.buffers.add(name)
            elif isinstance(value, ast.Name) and value.id in self.buffers:
                self.buffers.add(name)

    @staticmethod
    def _is_bytearray_ctor(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "bytearray")

    @staticmethod
    def _root_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _clear_binding(self, target: ast.AST, retired: dict) -> None:
        if isinstance(target, ast.Name):
            retired.pop(target.id, None)
            # note: view/buffer rebinding is handled by _handle_assign for
            # assignments; loop/with targets simply stop being views.
            self.views.pop(target.id, None)
            self.buffers.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_binding(element, retired)
        elif isinstance(target, ast.Starred):
            self._clear_binding(target.value, retired)

    # -- expression scanning ------------------------------------------------

    def _scan_value(self, node: ast.expr) -> None:
        """Stale-view loads plus the hidden-copy patterns, recursively."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                info = self.views.get(sub.id)
                if info is not None and info.stale is not None:
                    self._report(
                        "view-escape", sub,
                        f"view {sub.id!r} of buffer "
                        f"{info.origin or 'external'!r} used after its "
                        f"backing was {info.stale}; take the view after the "
                        "mutation, or copy with .tobytes() first")
            elif isinstance(sub, ast.Call):
                self._scan_call(sub)
            elif isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add):
                if self.hot and (self._is_view(sub.left)
                                 or self._is_view(sub.right)):
                    operand = (sub.left if self._is_view(sub.left)
                               else sub.right)
                    self._report(
                        "hidden-copy", sub,
                        f"+ concatenation copies view "
                        f"{self._describe(operand)} on a hot path; "
                        "preallocate a buffer and slice-assign instead")

    def _scan_call(self, call: ast.Call) -> None:
        func = call.func
        if (self.hot and isinstance(func, ast.Name) and func.id == "bytes"
                and len(call.args) == 1 and self._is_view(call.args[0])):
            self._report(
                "hidden-copy", call,
                f"bytes() flattens view {self._describe(call.args[0])} on a "
                "hot path; pass the view through, or spell a deliberate "
                "copy as .tobytes()")
        elif (self.hot and isinstance(func, ast.Attribute)
                and func.attr in _PADDING_METHODS):
            self._report(
                "hidden-copy", call,
                f".{func.attr}() pads by building a fresh copy on a hot "
                "path; write into a preallocated buffer instead")

    def _scan_for_iter(self, stmt) -> None:
        self._scan_value(stmt.iter)
        if (self.hot and isinstance(stmt.iter, ast.Name)
                and stmt.iter.id in self.views):
            self._report(
                "hidden-copy", stmt,
                f"per-byte Python loop over view {stmt.iter.id!r} on a hot "
                "path; use whole-buffer operations (int.from_bytes, "
                "slice assignment) instead")

    # -- call effects (mutation horizons, escapes, pool recycling) ----------

    def _call_effects(self, node: ast.expr, retired: dict) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver_key = _key(func.value)
        receiver_root = self._root_name(func.value)

        if method in _FLUSH_METHODS:
            self._stale_self_views(f"flushed by .{method}()")
            return

        if method in _MUTATOR_METHODS:
            # Free-list recycling: `<...pool...>.append(event)` retires
            # the argument — later loads in this suite are pool leaks,
            # and views of it dangle.
            last = receiver_key.rsplit(".", 1)[-1] if receiver_key else ""
            if (method == "append" and "pool" in last.lower()
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)):
                retired[node.args[0].id] = node.lineno
                self._stale_origin(node.args[0].id,
                                   "recycled to a free list")
                return
            # Escape: borrowed view appended into a self-owned container.
            if (receiver_root == "self"
                    and method in ("append", "insert", "add")):
                for arg in node.args:
                    origin = self._view_origin(arg)
                    if origin is not _NOT_A_VIEW \
                            and _ViewInfo(origin).borrowed:
                        self._report(
                            "view-escape", node,
                            f"borrowed view {self._describe(arg)} appended "
                            f"to container {receiver_key!r} escapes its "
                            "frame; copy with .tobytes() or consume it "
                            "before the buffer's next mutation")
            # Mutation horizon for views of the receiver.
            keep = (receiver_root if receiver_root in self.views
                    and isinstance(func.value, ast.Name) else None)
            self._stale_origin(receiver_key, f"mutated by .{method}()",
                               keep=keep)

    # -- pool-leak ----------------------------------------------------------

    def _check_retired(self, stmt: ast.stmt, retired: dict) -> None:
        for sub in ast.walk(stmt):
            if (isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
                    and sub.id in retired):
                self._report(
                    "pool-leak", sub,
                    f"pooled event {sub.id!r} used after being recycled to "
                    "the free list; the pool may re-arm it at any time — "
                    "drop the reference at the append")


#: Sentinel distinguishing "not a view" from "view of unknown origin".
_NOT_A_VIEW = object()


def analyze_aliasing(tree: ast.Module, path: Path) -> list[Finding]:
    """All aliasing findings for one parsed module."""
    findings: list[Finding] = []
    hot = _is_hot(tree, path)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionScan(Path(path), hot, findings).run(node)
    findings.sort(key=lambda f: (f.line, f.rule_id, f.message))
    return findings


class _AliasRule(Rule):
    """Shared facade: run the analysis, keep this rule's findings."""

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for finding in analyze_aliasing(tree, path):
            if finding.rule_id == self.rule_id:
                yield finding


class ViewEscapeRule(_AliasRule):
    rule_id = "view-escape"
    summary = ("a borrowed memoryview outlives its backing buffer "
               "(stored on self, kept in a container, or used past a "
               "mutation/flush/swap/recycle horizon)")


class HiddenCopyRule(_AliasRule):
    rule_id = "hidden-copy"
    summary = ("a hot path silently copies a zero-copy view: bytes(view), "
               "view + ..., .ljust-family padding, or a per-byte loop")


class PoolLeakRule(_AliasRule):
    rule_id = "pool-leak"
    summary = ("a pooled event reference is retained across the free-list "
               "re-arm boundary")


ALIAS_RULES = (ViewEscapeRule, HiddenCopyRule, PoolLeakRule)


def alias_rule_registry() -> dict:
    """rule id -> rule class, for ``--rules`` selection."""
    return {rule.rule_id: rule for rule in ALIAS_RULES}

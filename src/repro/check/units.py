"""Dimensional-analysis lint: ``repro check --units``.

An abstract interpreter over each module's AST that assigns *dimensions*
to expressions and propagates them through arithmetic.  A dimension is a
product of base units with integer exponents — ``bytes``,
``bytes·s⁻¹``, ``ms`` — plus two special values: *dimensionless* (a
known pure number, compatible with anything under addition) and
*unknown* (no inference; unknown never produces findings).

Dimensions come from three sources, in priority order:

1. a **seed table** of exact names this code base uses consistently
   (``nbytes``, ``size``, ``latency``, ``transfer_rate``, …);
2. **suffix conventions** (``_bytes``, ``_s``, ``_ms``, ``_bps``,
   ``_bytes_per_s``, …) and a few prefixes (``bytes_``, ``num_``);
3. **call returns** for a table of known converters and model methods
   (``repro.units.ms`` returns seconds, ``transmission_time`` returns
   seconds, ``wire_size`` returns bytes, …).

Three rules report over the inferred dimensions:

* ``unit-mismatch`` — addition/subtraction/comparison of two different
  known dimensions (the seconds-plus-bytes class of bug), assignment of
  a known dimension to a name declaring a different one (the Mb/s into
  a ``_bytes_per_s`` name class), and a non-seconds argument to
  ``env.timeout`` (the ms-into-simulated-seconds class).
* ``unit-bitbyte`` — a raw ``* 8`` / ``/ 8`` applied to a quantity
  carrying bits or bytes, outside the blessed ``repro/units.py``; use
  ``to_bytes_per_s`` / ``to_bits`` / ``seconds_to_send`` instead.
* ``unit-magic`` — multiplication/division of a dimensioned quantity by
  a bare scale constant (1000, 1e6, 1024, …) instead of a named
  constant or converter from ``repro.units``.

``# repro: allow[units]`` suppresses all three on a line (each specific
id also works).  The interpreter is deliberately conservative: unknown
operands poison results to unknown, and dimensionless constants are
compatible with everything, so only high-confidence confusions fire.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from .findings import Finding
from .lint import Rule
from .rules import _ImportMap

__all__ = ["UNIT_RULES", "unit_rule_registry", "analyze_units", "Dim",
           "name_dim", "UNIT_RULE_GROUP"]

#: Allow-comment group id: ``# repro: allow[units]`` covers every
#: ``unit-*`` rule (see LintEngine suppression handling).
UNIT_RULE_GROUP = "units"

#: The one module allowed to contain raw conversion factors.
BLESSED_SUFFIXES = ("repro/units.py",)


# -- the dimension algebra ----------------------------------------------------


class Dim:
    """A product of base units with integer exponents.

    Instances are immutable and interned by their exponent map;
    ``Dim({})`` is *dimensionless* (a known pure number).  ``None`` is
    used throughout the analyzer for *unknown*.
    """

    __slots__ = ("exponents",)

    def __init__(self, exponents: dict[str, int]):
        object.__setattr__(self, "exponents",
                           tuple(sorted((base, exp)
                                        for base, exp in exponents.items()
                                        if exp != 0)))

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Dim is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Dim) and self.exponents == other.exponents

    def __hash__(self) -> int:
        # In-process set/dict membership only; never persisted or ordered.
        return hash(self.exponents)  # repro: allow[salted-hash]

    @property
    def dimensionless(self) -> bool:
        return not self.exponents

    def mul(self, other: "Dim") -> "Dim":
        merged = dict(self.exponents)
        for base, exp in other.exponents:
            merged[base] = merged.get(base, 0) + exp
        return Dim(merged)

    def div(self, other: "Dim") -> "Dim":
        merged = dict(self.exponents)
        for base, exp in other.exponents:
            merged[base] = merged.get(base, 0) - exp
        return Dim(merged)

    def involves(self, *bases: str) -> bool:
        return any(base in bases for base, _ in self.exponents)

    def __str__(self) -> str:
        if not self.exponents:
            return "dimensionless"
        parts = []
        for base, exp in self.exponents:
            parts.append(base if exp == 1 else f"{base}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging
        return f"Dim({dict(self.exponents)!r})"


DIMENSIONLESS = Dim({})
BYTES = Dim({"byte": 1})
BITS = Dim({"bit": 1})
SECONDS = Dim({"s": 1})
MILLISECONDS = Dim({"ms": 1})
MICROSECONDS = Dim({"us": 1})
BYTES_PER_S = Dim({"byte": 1, "s": -1})
BITS_PER_S = Dim({"bit": 1, "s": -1})
MEGABYTES_PER_S = Dim({"mb": 1, "s": -1})
PER_SECOND = Dim({"s": -1})
S_PER_BYTE = Dim({"s": 1, "byte": -1})


# -- dimension inference for names --------------------------------------------

#: Exact identifier -> dimension.  Only names this repository uses with
#: one consistent meaning; anything generic stays unknown.
SEED_NAMES: dict[str, Dim] = {
    "nbytes": BYTES,
    "size": BYTES,
    "length": BYTES,
    "payload": BYTES,
    "payload_size": BYTES,
    "packet_size": BYTES,
    "request_size": BYTES,
    "block_size": BYTES,
    "unit_size": BYTES,
    "striping_unit": BYTES,
    "transfer_unit": BYTES,
    "local_size": BYTES,
    "datagram_size": BYTES,
    "wire_bytes": BYTES,
    "bandwidth": BYTES_PER_S,
    "goodput": BYTES_PER_S,
    "throughput": BYTES_PER_S,
    "data_rate": BYTES_PER_S,
    "transfer_rate": BYTES_PER_S,
    "controller_rate": BYTES_PER_S,
    "latency": SECONDS,
    "delay": SECONDS,
    "duration": SECONDS,
    "timeout": SECONDS,
    "deadline": SECONDS,
    "elapsed": SECONDS,
    "arrival_rate": PER_SECOND,
    # CPU cost-model coefficients: seconds *per byte* / *per packet* (a
    # packet is a count, so per-packet cost is plain seconds).  The
    # suffix grammar cannot express per-X rates, hence the exact seeds.
    "per_byte_s": S_PER_BYTE,
    "per_packet_s": SECONDS,
}

#: name-suffix -> dimension, longest suffix wins.
SEED_SUFFIXES: list[tuple[str, Dim]] = sorted([
    ("_bytes_per_s", BYTES_PER_S),
    ("bytes_per_second", BYTES_PER_S),
    ("_bits_per_s", BITS_PER_S),
    ("bits_per_second", BITS_PER_S),
    ("_mb_per_s", MEGABYTES_PER_S),
    ("_mb_s", MEGABYTES_PER_S),
    ("_bps", BITS_PER_S),
    ("_data_rate", BYTES_PER_S),
    ("_per_byte_s", S_PER_BYTE),
    ("_per_packet_s", SECONDS),
    ("_bytes", BYTES),
    ("_nbytes", BYTES),
    ("_bits", BITS),
    ("_ms", MILLISECONDS),
    ("_us", MICROSECONDS),
    ("_s", SECONDS),
], key=lambda pair: -len(pair[0]))

#: name-prefix -> dimension (names are matched after stripping leading
#: underscores).
SEED_PREFIXES: list[tuple[str, Dim]] = [
    ("bytes_", BYTES),
    ("num_", DIMENSIONLESS),
]

#: Call target (last attribute segment or qualified name suffix) ->
#: return dimension.  Converters from repro.units plus model methods
#: whose docstrings pin the unit.
CALL_RETURNS: dict[str, Dim] = {
    # repro.units converters
    "ms": SECONDS,
    "us": SECONDS,
    "s_to_ms": MILLISECONDS,
    "kib": BYTES,
    "mib": BYTES,
    "kb": BYTES,
    "mb": BYTES,
    "kb_per_s": BYTES_PER_S,
    "mb_per_s": BYTES_PER_S,
    "to_bits": BITS,
    "to_bytes": BYTES,
    "to_bytes_per_s": BYTES_PER_S,
    "to_bits_per_s": BITS_PER_S,
    "seconds_to_send": SECONDS,
    # model methods with documented units
    "transmission_time": SECONDS,
    "contention_penalty": SECONDS,
    "transfer_time": SECONDS,
    "block_service_time": SECONDS,
    "draw_positioning_time": SECONDS,
    "draw_position_time": SECONDS,
    "mean_access_time": SECONDS,
    "nominal_capacity": BYTES_PER_S,
    "goodput_upper_bound": BYTES_PER_S,
    "wire_size": BYTES,
}

#: Calls whose result simply carries the first argument's dimension.
PASSTHROUGH_CALLS = frozenset({"abs", "float", "int", "round", "sorted"})

#: Calls whose result joins every argument's dimension (same -> kept).
JOIN_CALLS = frozenset({"min", "max"})

#: The raw bit/byte factor.
BITBYTE_FACTORS = frozenset({8.0})

#: Scale constants that must be named, not inlined, when applied to a
#: dimensioned quantity.
MAGIC_FACTORS = frozenset({
    1000.0, 1_000_000.0, 1_000_000_000.0,        # decimal k/M/G
    1024.0, 1048576.0, 1073741824.0,             # binary Ki/Mi/Gi
    1e-3, 1e-6, 1e-9,                            # the inverse scales
})


def name_dim(name: str) -> Optional[Dim]:
    """The declared dimension of an identifier, or None (unknown)."""
    stripped = name.lstrip("_").lower()
    if stripped in SEED_NAMES:
        return SEED_NAMES[stripped]
    for suffix, dim in SEED_SUFFIXES:
        if stripped.endswith(suffix):
            return dim
    for prefix, dim in SEED_PREFIXES:
        if stripped.startswith(prefix):
            return dim
    return None


def _literal_number(node: ast.expr) -> Optional[float]:
    """The numeric value of a constant expression (incl. unary minus)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    return None


# -- the abstract interpreter -------------------------------------------------


class _Scope:
    """Inferred dimensions of local names within one function/module."""

    def __init__(self):
        self.known: dict[str, Dim] = {}

    def lookup(self, name: str) -> Optional[Dim]:
        declared = name_dim(name)
        if declared is not None:
            return declared
        return self.known.get(name)

    def bind(self, name: str, dim: Optional[Dim]) -> None:
        declared = name_dim(name)
        if declared is not None:
            return  # suffix-declared names keep their declared dimension
        if dim is None:
            self.known.pop(name, None)
        else:
            self.known[name] = dim


class _UnitInterpreter:
    """Walks one module, inferring dimensions and collecting findings.

    Findings are tagged with their specific rule id; the Rule facades
    below filter by id so ``--rules`` selection and per-rule exemptions
    keep working.
    """

    def __init__(self, tree: ast.Module, path: Path):
        self.tree = tree
        self.path = path
        self.imports = _ImportMap(tree)
        self.findings: list[tuple[str, ast.AST, str]] = []

    # -- entry point --------------------------------------------------------

    def run(self) -> list[tuple[str, ast.AST, str]]:
        module_scope = _Scope()
        self._exec_block(self.tree.body, module_scope)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._exec_function(node)
        return self.findings

    def _exec_function(self, node) -> None:
        scope = _Scope()
        arguments = node.args
        for arg in (arguments.posonlyargs + arguments.args
                    + arguments.kwonlyargs):
            scope.bind(arg.arg, None)  # suffix inference applies via lookup
        self._exec_block(node.body, scope)

    # -- statements ---------------------------------------------------------

    def _exec_block(self, statements, scope: _Scope) -> None:
        for statement in statements:
            self._exec_statement(statement, scope)

    def _exec_statement(self, node, scope: _Scope) -> None:
        if isinstance(node, ast.Assign):
            dim = self._infer(node.value, scope)
            for target in node.targets:
                self._assign(target, dim, node.value, scope)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            dim = self._infer(node.value, scope)
            self._assign(node.target, dim, node.value, scope)
        elif isinstance(node, ast.AugAssign):
            target_dim = self._target_dim(node.target, scope)
            value_dim = self._infer(node.value, scope)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_additive(node, target_dim, value_dim)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._infer(node.value, scope)
        elif isinstance(node, ast.Expr):
            self._infer(node.value, scope)
        elif isinstance(node, (ast.If, ast.While)):
            self._infer(node.test, scope)
            self._exec_block(node.body, scope)
            self._exec_block(node.orelse, scope)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._infer(node.iter, scope)
            self._exec_block(node.body, scope)
            self._exec_block(node.orelse, scope)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._infer(item.context_expr, scope)
            self._exec_block(node.body, scope)
        elif isinstance(node, ast.Try):
            self._exec_block(node.body, scope)
            for handler in node.handlers:
                self._exec_block(handler.body, scope)
            self._exec_block(node.orelse, scope)
            self._exec_block(node.finalbody, scope)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._infer(child, scope)
        # FunctionDef/ClassDef bodies are handled by run(); other
        # statements carry no dimension information.

    def _target_dim(self, target: ast.expr, scope: _Scope) -> Optional[Dim]:
        if isinstance(target, ast.Name):
            return scope.lookup(target.id)
        if isinstance(target, ast.Attribute):
            return name_dim(target.attr)
        return None

    def _assign(self, target: ast.expr, dim: Optional[Dim],
                value: ast.expr, scope: _Scope) -> None:
        if isinstance(target, ast.Name):
            declared = name_dim(target.id)
            self._check_declared(target, declared, dim, value)
            scope.bind(target.id, dim)
        elif isinstance(target, ast.Attribute):
            self._check_declared(target, name_dim(target.attr), dim, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, None, value, scope)

    def _check_declared(self, target, declared: Optional[Dim],
                        dim: Optional[Dim], value: ast.expr) -> None:
        if declared is None or dim is None:
            return
        if declared.dimensionless or dim.dimensionless:
            return
        if declared != dim:
            self.findings.append((
                "unit-mismatch", value,
                f"assigning a {dim} expression to a name declared "
                f"{declared}; convert through repro.units"))

    # -- expressions --------------------------------------------------------

    def _infer(self, node: ast.expr, scope: _Scope) -> Optional[Dim]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) \
                    and not isinstance(node.value, bool):
                return DIMENSIONLESS
            return None
        if isinstance(node, ast.Name):
            return scope.lookup(node.id)
        if isinstance(node, ast.Attribute):
            self._infer(node.value, scope)
            return name_dim(node.attr)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, scope)
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, scope)
        if isinstance(node, ast.Compare):
            self._infer_compare(node, scope)
            return DIMENSIONLESS
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._infer(value, scope)
            return None
        if isinstance(node, ast.IfExp):
            self._infer(node.test, scope)
            body = self._infer(node.body, scope)
            orelse = self._infer(node.orelse, scope)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            return self._infer_call(node, scope)
        if isinstance(node, (ast.Await, ast.Starred)):
            return self._infer(node.value, scope)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # `yield env.timeout(delay)` is the engine's wait idiom; the
            # yielded expression must still be dimension-checked.
            if node.value is not None:
                self._infer(node.value, scope)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._infer(element, scope)
            return None
        if isinstance(node, ast.Subscript):
            self._infer(node.value, scope)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return None
        return None

    def _infer_call(self, node: ast.Call, scope: _Scope) -> Optional[Dim]:
        arg_dims = [self._infer(arg, scope) for arg in node.args]
        for keyword in node.keywords:
            self._infer(keyword.value, scope)
        target = None
        if isinstance(node.func, ast.Attribute):
            target = node.func.attr
        elif isinstance(node.func, ast.Name):
            target = node.func.id
        if target == "timeout" and arg_dims:
            arg_dim = arg_dims[0]
            if arg_dim is not None and not arg_dim.dimensionless \
                    and arg_dim != SECONDS:
                self.findings.append((
                    "unit-mismatch", node.args[0],
                    f"timeout() argument is {arg_dim}; simulated delays "
                    "are seconds — convert through repro.units"))
            return None
        if target in PASSTHROUGH_CALLS and arg_dims:
            return arg_dims[0]
        if target in JOIN_CALLS and arg_dims:
            dims = set(arg_dims)
            dims.discard(DIMENSIONLESS)
            if len(dims) == 1:
                return dims.pop()
            return None
        if target in CALL_RETURNS:
            return CALL_RETURNS[target]
        return None

    def _infer_binop(self, node: ast.BinOp, scope: _Scope) -> Optional[Dim]:
        left = self._infer(node.left, scope)
        right = self._infer(node.right, scope)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_additive(node, left, right)
            if left is None or right is None:
                return None
            if left.dimensionless:
                return right
            if right.dimensionless:
                return left
            return left if left == right else None
        if isinstance(node.op, (ast.Mult, ast.Div)):
            self._check_factors(node, left, right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Mult):
                return left.mul(right)
            return left.div(right)
        if isinstance(node.op, ast.FloorDiv):
            if left is not None and left == right:
                return DIMENSIONLESS
            return None
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _check_additive(self, node, left: Optional[Dim],
                        right: Optional[Dim]) -> None:
        if left is None or right is None:
            return
        if left.dimensionless or right.dimensionless:
            return
        if left != right:
            self.findings.append((
                "unit-mismatch", node,
                f"mixing {left} and {right} in an additive expression; "
                "convert through repro.units first"))

    def _infer_compare(self, node: ast.Compare, scope: _Scope) -> None:
        dims = [self._infer(node.left, scope)]
        dims.extend(self._infer(comparator, scope)
                    for comparator in node.comparators)
        known = [dim for dim in dims
                 if dim is not None and not dim.dimensionless]
        for first, second in zip(known, known[1:]):
            if first != second:
                self.findings.append((
                    "unit-mismatch", node,
                    f"comparing {first} against {second}; convert "
                    "through repro.units first"))

    def _check_factors(self, node: ast.BinOp, left: Optional[Dim],
                       right: Optional[Dim]) -> None:
        """The bit-byte and magic-constant rules on one Mult/Div."""
        for literal_node, other_dim in (
                (node.left, right), (node.right, left)):
            literal = _literal_number(literal_node)
            if literal is None or other_dim is None \
                    or other_dim.dimensionless:
                continue
            magnitude = abs(literal)
            if magnitude in BITBYTE_FACTORS \
                    and other_dim.involves("bit", "byte", "mb"):
                self.findings.append((
                    "unit-bitbyte", node,
                    f"raw *8//8 bit-byte conversion on a {other_dim} "
                    "quantity; use repro.units.to_bytes_per_s / to_bits "
                    "/ seconds_to_send"))
            elif magnitude in MAGIC_FACTORS:
                self.findings.append((
                    "unit-magic", node,
                    f"magic scale constant {literal:g} applied to a "
                    f"{other_dim} quantity; use a named constant or "
                    "converter from repro.units"))


def analyze_units(tree: ast.Module, path: Path) -> list[tuple[str, ast.AST,
                                                              str]]:
    """All unit findings of one module as (rule_id, node, message)."""
    return _UnitInterpreter(tree, path).run()


# -- Rule facades (one per id, for --rules selection and exemptions) ----------


class _UnitRuleBase(Rule):
    """Shared driver: run the interpreter, keep this rule's findings."""

    exempt_suffixes = BLESSED_SUFFIXES

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for rule_id, node, message in analyze_units(tree, path):
            if rule_id == self.rule_id:
                yield self.finding(path, node, message)


class UnitMismatchRule(_UnitRuleBase):
    """Additive/comparison/assignment dimension confusion."""

    rule_id = "unit-mismatch"
    summary = "arithmetic mixes incompatible dimensions (s+bytes, Mb/MB)"


class BitByteRule(_UnitRuleBase):
    """Inline *8 and /8 conversions outside repro/units.py."""

    rule_id = "unit-bitbyte"
    summary = "raw *8 or /8 bit-byte conversion outside repro.units"


class MagicFactorRule(_UnitRuleBase):
    """Inline 1000/1e6/1024 scale factors on dimensioned quantities."""

    rule_id = "unit-magic"
    summary = "magic scale constant (1000, 1e6, 1024) on a dimensioned value"


#: Rule classes of the ``--units`` pass, in reporting order.
UNIT_RULES = (UnitMismatchRule, BitByteRule, MagicFactorRule)


def unit_rule_registry() -> dict[str, type[Rule]]:
    """Rule id -> rule class, for --rules selection and the docs."""
    return {rule.rule_id: rule for rule in UNIT_RULES}

"""The unit of output every checker layer produces: a :class:`Finding`."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but do not affect the exit code (used for heuristics that can
    legitimately fire on correct code, like shared-stream detection).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: Path
    line: int
    message: str
    severity: Severity = Severity.ERROR
    source: str = field(default="", compare=False)

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by ``repro check --json``)."""
        return {
            "rule": self.rule_id,
            "path": str(self.path),
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
        }

    def format(self) -> str:
        """One-line human-readable form, editor-clickable."""
        return (f"{self.path}:{self.line}: "
                f"{self.severity.value} [{self.rule_id}] {self.message}")

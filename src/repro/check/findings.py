"""The unit of output every checker layer produces: a :class:`Finding`."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from pathlib import Path


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but do not affect the exit code (used for heuristics that can
    legitimately fire on correct code, like shared-stream detection).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: Path
    line: int
    message: str
    severity: Severity = Severity.ERROR
    source: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable short ID for this finding.

        Hashes the rule, the file *name* (not the absolute path, so the
        ID survives a checkout move) and the first line of the message
        (not the line number, so it survives unrelated edits above the
        finding).  CI can track, baseline, or waive findings by ID.
        """
        first_line = self.message.splitlines()[0] if self.message else ""
        key = f"{self.rule_id}|{self.path.name}|{first_line}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by ``repro check --json``)."""
        return {
            "id": self.fingerprint,
            "rule": self.rule_id,
            "path": str(self.path),
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
        }

    def format(self) -> str:
        """One-line human-readable form, editor-clickable."""
        return (f"{self.path}:{self.line}: "
                f"{self.severity.value} [{self.rule_id}] {self.message} "
                f"(id {self.fingerprint})")

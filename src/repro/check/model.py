"""Explicit-state bounded model checker for the transfer protocol.

``repro check --model`` composes each client state machine from
:mod:`repro.check.spec` with its agent-side peer and an adversarial
network (:mod:`repro.check.adversary`), then explores *every* reachable
interleaving breadth-first up to a depth bound.  Two model families run:

* :class:`PairModel` — the symbolic product of a (client, agent)
  machine pair.  Messages are bare class names; the network may drop,
  duplicate and reorder them, and crash/restart the agent.  Checked:
  no deadlock (a stuck non-resting composite state), no unhandled
  message (a delivery the receiving side neither accepts nor is
  spec-licensed to ignore), and bounded liveness (from every reachable
  state the client can still reach DONE or a clean ABORT within the
  retransmit budget).
* :class:`WriteModel` / :class:`ReadModel` — semantic refinements of
  the write and read paths with real byte accounting: disk cells carry
  generation tags, agent op-state is keyed by op id, and stale messages
  from a prior session (old op/seq) join the adversary's arsenal.
  Checked: the conservation contract of ``check/conserve.py`` — no byte
  lost (client DONE implies every cell holds current-generation data)
  and no byte duplicated (no cell written twice, no write applied
  twice).

Because every budget (retransmits, drops, duplicates, crashes, stale
injections, buffer capacity, packets) is finite, the state space is
finite; the default depth bound is a safety valve and the checker
reports whether the space was exhausted.  Counterexamples are minimal
by construction (BFS) and print as numbered message schedules ending in
the violated invariant.

Mutation hooks (:class:`SemanticFlags`) re-introduce the implementation
guards' absence — accept unknown-op data, trust any reply, re-apply on
status query — so tests can demonstrate that removing a guard produces
a counterexample trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .adversary import (
    AdversaryBudget,
    channel_add,
    channel_items,
    channel_remove,
)
from .findings import Finding
from .spec import MACHINE_PAIRS, StateMachine, machine_by_name

__all__ = ["ModelConfig", "SemanticFlags", "PairModel", "WriteModel",
           "ReadModel", "Violation", "ExploreResult", "ScenarioStats",
           "ModelStats", "explore", "check_model", "scenario_names",
           "build_scenario"]

#: Synthetic client states: the retransmit budget ran out (clean abort),
#: and the crashed agent (volatile state lost, network survives).
ABORTED = "#ABORTED"
DEAD = "#DEAD"

_MAX_VIOLATIONS_PER_SCENARIO = 5


@dataclass(frozen=True)
class Violation:
    """One invariant violation with its minimal counterexample."""

    invariant: str              # deadlock | unhandled | livelock | safety
    message: str
    trace: tuple[str, ...]      # message schedule from the initial state

    def format(self) -> str:
        lines = [f"{self.message}"]
        lines.append(f"  counterexample ({len(self.trace)} steps):")
        for index, step in enumerate(self.trace, start=1):
            lines.append(f"    {index:2d}. {step}")
        return "\n".join(lines)


@dataclass
class ExploreResult:
    """What one exploration saw."""

    states: int = 0
    transitions: int = 0
    depth_reached: int = 0
    exhausted: bool = True
    violations: list[Violation] = field(default_factory=list)


def explore(model, max_depth: int) -> ExploreResult:
    """Breadth-first exploration of ``model`` up to ``max_depth`` actions.

    ``model`` provides ``initial_state()``, ``successors(state)`` →
    ``(steps, violations)`` where steps are ``(label, next_state)``
    pairs, ``check_state(state)`` → ``(invariant, message)`` pairs, and
    ``is_resting(state)``.  BFS guarantees the first trace reaching a
    violation is minimal.
    """
    result = ExploreResult()
    initial = model.initial_state()
    parents: dict = {initial: (None, None)}
    depths: dict = {initial: 0}
    queue: deque = deque([initial])
    adjacency: dict = {}
    seen_violations: set[tuple[str, str]] = set()

    def trace_to(state) -> tuple[str, ...]:
        steps: list[str] = []
        while True:
            parent, label = parents[state]
            if parent is None:
                break
            steps.append(label)
            state = parent
        return tuple(reversed(steps))

    def report(invariant: str, message: str, trace: tuple[str, ...]) -> None:
        key = (invariant, message)
        if key in seen_violations:
            return
        if len(result.violations) >= _MAX_VIOLATIONS_PER_SCENARIO:
            return
        seen_violations.add(key)
        result.violations.append(Violation(invariant, message, trace))

    while queue:
        state = queue.popleft()
        depth = depths[state]
        result.states += 1
        result.depth_reached = max(result.depth_reached, depth)
        for invariant, message in model.check_state(state):
            report(invariant, message, trace_to(state))
        steps, step_violations = model.successors(state)
        for invariant, message, label in step_violations:
            report(invariant, message, trace_to(state) + (label,))
        if not steps and not model.is_resting(state):
            report("deadlock", "deadlock: no action enabled in a "
                   "non-resting composite state", trace_to(state))
        adjacency[state] = tuple(successor for _, successor in steps)
        result.transitions += len(steps)
        if depth >= max_depth:
            if any(successor not in parents for _, successor in steps):
                result.exhausted = False
            continue
        for label, successor in steps:
            if successor not in parents:
                parents[successor] = (state, label)
                depths[successor] = depth + 1
                queue.append(successor)

    if result.exhausted:
        _check_liveness(model, adjacency, parents, trace_to, report)
    return result


def _check_liveness(model, adjacency, parents, trace_to, report) -> None:
    """Bounded liveness: every state can still reach a resting state.

    Only meaningful over an exhausted space: reverse-reachability from
    the resting states; anything outside is a livelock.
    """
    reverse: dict = {state: [] for state in adjacency}
    for state, successors in adjacency.items():
        for successor in successors:
            reverse.setdefault(successor, []).append(state)
    can_rest = {state for state in adjacency if model.is_resting(state)}
    frontier = list(can_rest)
    while frontier:
        state = frontier.pop()
        for predecessor in reverse.get(state, ()):
            if predecessor not in can_rest:
                can_rest.add(predecessor)
                frontier.append(predecessor)
    stuck = [state for state in adjacency if state not in can_rest]
    if stuck:
        witness = min(stuck, key=lambda state: len(trace_to(state)))
        report("livelock", "livelock: transfer can neither complete nor "
               "cleanly abort from this state", trace_to(witness))


# -- symbolic pair composition ------------------------------------------------


class PairModel:
    """Symbolic product of a client machine, an agent machine and the
    adversarial network.

    State: ``(client_state, agent_state, c2a, a2c, retransmits,
    sends_left, naks_used, drops, dups, crashes)``.  Channels are
    multisets of message class names.  The client's retransmit budget
    turns exhausted timeouts into a clean ``#ABORTED`` terminal, exactly
    like the implementation raising ``TransferError``; the agent's
    watchdog timeout is bounded by ``max_naks`` rounds.  A ``transient``
    state holds the floor: deliveries to that side wait until it has
    taken one of its own edges (the implementation handles a datagram to
    completion before reading the next).
    """

    def __init__(self, client: StateMachine, agent: StateMachine,
                 budget: AdversaryBudget, retransmit_bound: int = 2,
                 send_bound: int = 2, max_naks: int = 2):
        if client.side != "client" or agent.side != "agent":
            raise ValueError("PairModel wants a (client, agent) machine pair")
        self.client = client
        self.agent = agent
        self.budget = budget
        self.retransmit_bound = retransmit_bound
        self.send_bound = send_bound
        self.max_naks = max_naks

    def initial_state(self):
        return (self.client.initial, self.agent.initial, (), (),
                0, self.send_bound, 0, 0, 0, 0)

    def is_resting(self, state) -> bool:
        client_state = state[0]
        return client_state in self.client.terminals or client_state == ABORTED

    def check_state(self, state):
        return ()

    def successors(self, state):
        (client_state, agent_state, c2a, a2c,
         retransmits, sends_left, naks_used, drops, dups, crashes) = state
        capacity = self.budget.channel_capacity
        steps: list[tuple[str, tuple]] = []
        violations: list[tuple[str, str, str]] = []

        def pack(client_state=client_state, agent_state=agent_state,
                 c2a=c2a, a2c=a2c, retransmits=retransmits,
                 sends_left=sends_left, naks_used=naks_used, drops=drops,
                 dups=dups, crashes=crashes):
            return (client_state, agent_state, c2a, a2c, retransmits,
                    sends_left, naks_used, drops, dups, crashes)

        # Client edges (sends, internals, timeouts).
        if client_state != ABORTED:
            for edge in self.client.edges_from(client_state):
                if edge.event.startswith("send "):
                    message = edge.event.split(" ", 1)[1]
                    if edge.target == edge.source and sends_left <= 0:
                        continue  # streaming budget spent; await feedback
                    remaining = (sends_left - 1
                                 if edge.target == edge.source else sends_left)
                    steps.append((
                        f"client: send {message}",
                        pack(client_state=edge.target,
                             c2a=channel_add(c2a, message, capacity),
                             sends_left=remaining)))
                elif edge.event == "internal":
                    steps.append((
                        "client: internal step",
                        pack(client_state=edge.target)))
                elif edge.event == "timeout":
                    if retransmits < self.retransmit_bound:
                        steps.append((
                            "client: timeout (retransmit "
                            f"{retransmits + 1}/{self.retransmit_bound})",
                            pack(client_state=edge.target,
                                 retransmits=retransmits + 1)))
                    else:
                        steps.append((
                            "client: timeout — retransmit bound reached, "
                            "abort cleanly",
                            pack(client_state=ABORTED)))

        # Agent edges.
        if agent_state != DEAD:
            for edge in self.agent.edges_from(agent_state):
                if edge.event.startswith("send "):
                    message = edge.event.split(" ", 1)[1]
                    steps.append((
                        f"agent: send {message}",
                        pack(agent_state=edge.target,
                             a2c=channel_add(a2c, message, capacity))))
                elif edge.event == "internal":
                    steps.append((
                        "agent: internal step",
                        pack(agent_state=edge.target)))
                elif edge.event == "timeout":
                    if naks_used < self.max_naks:
                        steps.append((
                            f"agent: watchdog timeout (nak round "
                            f"{naks_used + 1}/{self.max_naks})",
                            pack(agent_state=edge.target,
                                 naks_used=naks_used + 1)))

        # Deliveries out of each channel.
        client_transient = client_state in self.client.transient
        agent_transient = agent_state in self.agent.transient
        for message in channel_items(c2a):
            remaining = channel_remove(c2a, message)
            if agent_state == DEAD:
                steps.append((f"net: {message} arrives at crashed agent, "
                              "lost", pack(c2a=remaining)))
                continue
            if agent_transient:
                continue  # agent is mid-handler; delivery waits
            edges = [edge for edge in self.agent.edges_from(agent_state)
                     if edge.event == f"recv {message}"]
            if edges:
                for edge in edges:
                    steps.append((
                        f"net: deliver {message} -> agent",
                        pack(agent_state=edge.target, c2a=remaining)))
            elif message in self.agent.ignores:
                steps.append((f"agent: ignore {message} (filtered)",
                              pack(c2a=remaining)))
            else:
                violations.append((
                    "unhandled",
                    f"agent in state {agent_state} has no transition or "
                    f"ignore rule for {message}",
                    f"net: deliver {message} -> agent"))
        for message in channel_items(a2c):
            remaining = channel_remove(a2c, message)
            if client_state == ABORTED:
                steps.append((f"net: {message} arrives after client abort, "
                              "dropped by closed socket",
                              pack(a2c=remaining)))
                continue
            if client_transient:
                continue
            edges = [edge for edge in self.client.edges_from(client_state)
                     if edge.event == f"recv {message}"]
            if edges:
                for edge in edges:
                    # New information resets the streaming budget: the
                    # implementation retransmits in response to a NAK.
                    steps.append((
                        f"net: deliver {message} -> client",
                        pack(client_state=edge.target, a2c=remaining,
                             sends_left=self.send_bound)))
            elif message in self.client.ignores:
                steps.append((f"client: ignore {message} (filtered)",
                              pack(a2c=remaining)))
            else:
                violations.append((
                    "unhandled",
                    f"client in state {client_state} has no transition or "
                    f"ignore rule for {message}",
                    f"net: deliver {message} -> client"))

        # Adversary: drops, duplicates, crash/restart.
        if drops < self.budget.max_drops:
            for message in channel_items(c2a):
                steps.append((f"net: drop {message}",
                              pack(c2a=channel_remove(c2a, message),
                                   drops=drops + 1)))
            for message in channel_items(a2c):
                steps.append((f"net: drop {message}",
                              pack(a2c=channel_remove(a2c, message),
                                   drops=drops + 1)))
        if dups < self.budget.max_duplicates:
            for message in channel_items(c2a):
                if len(c2a) < capacity:
                    steps.append((f"net: duplicate {message}",
                                  pack(c2a=channel_add(c2a, message,
                                                       capacity),
                                       dups=dups + 1)))
            for message in channel_items(a2c):
                if len(a2c) < capacity:
                    steps.append((f"net: duplicate {message}",
                                  pack(a2c=channel_add(a2c, message,
                                                       capacity),
                                       dups=dups + 1)))
        if agent_state != DEAD and crashes < self.budget.max_crashes:
            steps.append(("agent: crash (volatile state lost)",
                          pack(agent_state=DEAD, crashes=crashes + 1)))
        if agent_state == DEAD:
            steps.append(("agent: restart (fresh state)",
                          pack(agent_state=self.agent.initial, naks_used=0)))
        return steps, violations


# -- semantic refinement models -----------------------------------------------


@dataclass(frozen=True)
class SemanticFlags:
    """Mutation hooks: re-introduce the absence of implementation guards.

    All default to False — the checked model.  Tests flip one at a time
    to demonstrate the checker produces a counterexample when a guard is
    removed (the model-level analogue of mutating the implementation).
    """

    accept_unknown_op_data: bool = False    # drop the unknown-op guard
    client_accepts_any_reply: bool = False  # drop the op_id reply filter
    client_accepts_any_seq: bool = False    # drop the stale-seq purge
    reapply_on_query: bool = False          # re-run the write on a re-ACK


#: Disk cell generations for the semantic models.
_EMPTY, _CURRENT, _STALE = 0, 1, -1
_CURRENT_OP, _STALE_OP = 1, 0


class WriteModel:
    """Byte-accurate write path: WRITE-REQ, WRITE-DATA*, ACK/NAK.

    The disk is a tuple of per-packet cells tagged by generation; the
    agent's op table maps op ids to (received-mask, applied-count).  The
    adversary may additionally inject stale messages carrying the
    previous session's op id.  Invariants (the conservation contract):

    * **no byte lost** — client DONE implies every cell holds exactly
      the current generation;
    * **no byte duplicated** — no cell is written twice and no op is
      applied twice.

    Spec conformance: the model simulates exactly the edge events of
    the ``write`` / ``write-server`` machines (checked statically by
    :func:`check_model`).
    """

    name = "bytes:write"
    client_machine = "write"
    agent_machine = "write-server"
    client_events = frozenset({
        "send WriteRequest", "send WriteData", "recv WriteAck",
        "recv WriteNak", "timeout"})
    agent_events = frozenset({
        "recv WriteRequest", "recv WriteData", "send WriteAck",
        "send WriteNak", "timeout", "internal"})

    def __init__(self, budget: AdversaryBudget, retransmit_bound: int = 2,
                 packets: int = 2, max_naks: int = 1,
                 flags: SemanticFlags = SemanticFlags()):
        self.budget = budget
        self.retransmit_bound = retransmit_bound
        self.packets = packets
        self.max_naks = max_naks
        self.flags = flags
        self.full_mask = (1 << packets) - 1

    # state: (phase, to_send, retransmits, alive, ops, disk, c2a, a2c,
    #         drops, dups, crashes, stale_used, naks_used)
    # ops: sorted tuple of (op_id, received_mask, applied_count)

    def initial_state(self):
        return ("IDLE", 0, 0, True, (), (_EMPTY,) * self.packets,
                (), (), 0, 0, 0, 0, 0)

    def is_resting(self, state) -> bool:
        return state[0] in ("DONE", "ABORTED")

    def check_state(self, state):
        phase, _, _, _, ops, disk = state[:6]
        problems = []
        for op_id, _, applied in ops:
            if applied > 1:
                problems.append((
                    "safety", "byte duplicated: write op "
                    f"{op_id} applied {applied} times"))
        if phase == "DONE":
            for index, cell in enumerate(disk):
                if cell != _CURRENT:
                    kind = "empty" if cell == _EMPTY else "stale data"
                    problems.append((
                        "safety", "byte lost: client believes the write "
                        f"is durable but disk cell {index} holds {kind}"))
        return problems

    # -- helpers ----------------------------------------------------------

    def _ops_get(self, ops, op_id):
        for entry in ops:
            if entry[0] == op_id:
                return entry
        return None

    def _ops_put(self, ops, op_id, mask, applied):
        others = tuple(entry for entry in ops if entry[0] != op_id)
        return tuple(sorted(others + ((op_id, mask, applied),)))

    def _write_cell(self, disk, index, op_id):
        # Cells are offset-addressed: re-writing the same generation to
        # the same cell is idempotent (crash-recovery retransmits are
        # legal).  A stale-generation write corrupts the cell.
        cells = list(disk)
        cells[index] = _CURRENT if op_id == _CURRENT_OP else _STALE
        return tuple(cells)

    def _missing(self, mask) -> tuple[int, ...]:
        return tuple(index for index in range(self.packets)
                     if not mask & (1 << index))

    def _handle_request(self, ops, disk, a2c, op_id, capacity):
        """Agent serves a WRITE-REQ (announce or status query)."""
        entry = self._ops_get(ops, op_id)
        if entry is None:
            return (self._ops_put(ops, op_id, 0, 0), disk, a2c,
                    "agent: register op, arm watchdog")
        _, mask, applied = entry
        if applied or mask == self.full_mask:
            if self.flags.reapply_on_query:
                for index in range(self.packets):
                    disk = self._write_cell(disk, index, op_id)
                ops = self._ops_put(ops, op_id, mask, applied + 1)
            return (ops, disk,
                    channel_add(a2c, ("WriteAck", op_id), capacity),
                    "agent: re-ACK completed op")
        return (ops, disk,
                channel_add(a2c, ("WriteNak", op_id, self._missing(mask)),
                            capacity),
                "agent: NAK status query (missing "
                f"{list(self._missing(mask))})")

    def _handle_data(self, ops, disk, a2c, op_id, index, capacity):
        """Agent absorbs one WRITE-DATA packet (synchronous write)."""
        entry = self._ops_get(ops, op_id)
        if entry is None:
            if not self.flags.accept_unknown_op_data:
                return ops, disk, a2c, "agent: ignore unknown-op data"
            entry = (op_id, 0, 0)
            ops = self._ops_put(ops, op_id, 0, 0)
        _, mask, applied = entry
        if applied:
            return ops, disk, a2c, "agent: ignore data for applied op"
        bit = 1 << index
        if mask & bit:
            return ops, disk, a2c, "agent: ignore duplicate packet"
        disk = self._write_cell(disk, index, op_id)
        mask |= bit
        if mask == self.full_mask:
            ops = self._ops_put(ops, op_id, mask, applied + 1)
            return (ops, disk,
                    channel_add(a2c, ("WriteAck", op_id), capacity),
                    "agent: final packet, apply and ACK")
        ops = self._ops_put(ops, op_id, mask, applied)
        return ops, disk, a2c, f"agent: store packet {index}"

    # -- successors -------------------------------------------------------

    def successors(self, state):
        (phase, to_send, retransmits, alive, ops, disk, c2a, a2c,
         drops, dups, crashes, stale_used, naks_used) = state
        capacity = self.budget.channel_capacity
        steps: list[tuple[str, tuple]] = []
        violations: list[tuple[str, str, str]] = []

        def pack(phase=phase, to_send=to_send, retransmits=retransmits,
                 alive=alive, ops=ops, disk=disk, c2a=c2a, a2c=a2c,
                 drops=drops, dups=dups, crashes=crashes,
                 stale_used=stale_used, naks_used=naks_used):
            return (phase, to_send, retransmits, alive, ops, disk, c2a,
                    a2c, drops, dups, crashes, stale_used, naks_used)

        # Client.
        if phase == "IDLE":
            steps.append((
                "client: send WriteRequest (announce op "
                f"{_CURRENT_OP}, {self.packets} packets)",
                pack(phase="STREAM", to_send=self.full_mask,
                     c2a=channel_add(c2a, ("WriteRequest", _CURRENT_OP),
                                     capacity))))
        elif phase == "STREAM":
            index = next(i for i in range(self.packets)
                         if to_send & (1 << i))
            remaining = to_send & ~(1 << index)
            steps.append((
                f"client: send WriteData packet {index}",
                pack(phase="STREAM" if remaining else "AWAIT",
                     to_send=remaining,
                     c2a=channel_add(c2a, ("WriteData", _CURRENT_OP, index),
                                     capacity))))
        elif phase == "AWAIT":
            if retransmits < self.retransmit_bound:
                steps.append((
                    "client: timeout, re-send WriteRequest (status query, "
                    f"retransmit {retransmits + 1}/{self.retransmit_bound})",
                    pack(retransmits=retransmits + 1,
                         c2a=channel_add(c2a, ("WriteRequest", _CURRENT_OP),
                                         capacity))))
            else:
                steps.append((
                    "client: timeout — retransmit bound reached, abort "
                    "cleanly", pack(phase="ABORTED")))
            for message in channel_items(a2c):
                remaining = channel_remove(a2c, message)
                kind, op_id = message[0], message[1]
                accepted = (op_id == _CURRENT_OP
                            or self.flags.client_accepts_any_reply)
                if kind == "WriteAck":
                    if accepted:
                        steps.append((
                            f"net: deliver WriteAck(op={op_id}) -> client; "
                            "client marks write durable",
                            pack(phase="DONE", a2c=remaining)))
                    else:
                        steps.append((
                            f"client: ignore stale WriteAck(op={op_id})",
                            pack(a2c=remaining)))
                elif kind == "WriteNak":
                    missing = message[2]
                    if accepted:
                        mask = 0
                        for index in missing:
                            mask |= 1 << index
                        steps.append((
                            f"net: deliver WriteNak(op={op_id}, "
                            f"missing={list(missing)}) -> client; "
                            "client retransmits",
                            pack(phase="STREAM" if mask else "AWAIT",
                                 to_send=mask, a2c=remaining)))
                    else:
                        steps.append((
                            f"client: ignore stale WriteNak(op={op_id})",
                            pack(a2c=remaining)))
                else:
                    violations.append((
                        "unhandled",
                        f"client has no handler for {kind}",
                        f"net: deliver {kind} -> client"))
        else:  # DONE / ABORTED: the socket is gone; late replies vanish.
            for message in channel_items(a2c):
                steps.append((
                    f"net: {message[0]}(op={message[1]}) arrives after "
                    "client finished, dropped by closed socket",
                    pack(a2c=channel_remove(a2c, message))))

        # Agent: deliveries are atomic handler runs.
        for message in channel_items(c2a):
            remaining = channel_remove(c2a, message)
            if not alive:
                steps.append((
                    f"net: {message[0]} arrives at crashed agent, lost",
                    pack(c2a=remaining)))
                continue
            kind, op_id = message[0], message[1]
            if kind == "WriteRequest":
                new_ops, new_disk, new_a2c, note = self._handle_request(
                    ops, disk, a2c, op_id, capacity)
                steps.append((
                    f"net: deliver WriteRequest(op={op_id}) -> agent; "
                    f"{note}",
                    pack(ops=new_ops, disk=new_disk, c2a=remaining,
                         a2c=new_a2c)))
            elif kind == "WriteData":
                index = message[2]
                new_ops, new_disk, new_a2c, note = self._handle_data(
                    ops, disk, a2c, op_id, index, capacity)
                steps.append((
                    f"net: deliver WriteData(op={op_id}, packet={index}) "
                    f"-> agent; {note}",
                    pack(ops=new_ops, disk=new_disk, c2a=remaining,
                         a2c=new_a2c)))
            else:
                violations.append((
                    "unhandled", f"agent has no handler for {kind}",
                    f"net: deliver {kind} -> agent"))

        # Agent watchdog: NAK a stalled, incomplete op.
        if alive and naks_used < self.max_naks:
            for op_id, mask, applied in ops:
                if applied or mask == self.full_mask:
                    continue
                steps.append((
                    f"agent: watchdog NAK op {op_id} (missing "
                    f"{list(self._missing(mask))})",
                    pack(a2c=channel_add(
                        a2c, ("WriteNak", op_id, self._missing(mask)),
                        capacity), naks_used=naks_used + 1)))

        # Adversary.
        if drops < self.budget.max_drops:
            for message in channel_items(c2a):
                steps.append((f"net: drop {message[0]}(op={message[1]})",
                              pack(c2a=channel_remove(c2a, message),
                                   drops=drops + 1)))
            for message in channel_items(a2c):
                steps.append((f"net: drop {message[0]}(op={message[1]})",
                              pack(a2c=channel_remove(a2c, message),
                                   drops=drops + 1)))
        if dups < self.budget.max_duplicates:
            for message in channel_items(c2a):
                if len(c2a) < capacity:
                    steps.append((
                        f"net: duplicate {message[0]}(op={message[1]})",
                        pack(c2a=channel_add(c2a, message, capacity),
                             dups=dups + 1)))
            for message in channel_items(a2c):
                if len(a2c) < capacity:
                    steps.append((
                        f"net: duplicate {message[0]}(op={message[1]})",
                        pack(a2c=channel_add(a2c, message, capacity),
                             dups=dups + 1)))
        if alive and crashes < self.budget.max_crashes:
            steps.append((
                "agent: crash between partial-write ACKs (op table lost, "
                "disk persists)",
                pack(alive=False, ops=(), crashes=crashes + 1)))
        if not alive:
            steps.append(("agent: restart (fresh op table)",
                          pack(alive=True, naks_used=0)))
        if stale_used < self.budget.max_stale:
            stale_nak = ("WriteNak", _STALE_OP,
                         tuple(range(self.packets)))
            for label, channel_name, message in (
                    ("net: inject stale WriteAck from prior session",
                     "a2c", ("WriteAck", _STALE_OP)),
                    ("net: inject stale WriteNak from prior session",
                     "a2c", stale_nak),
                    ("net: inject stale WriteData from prior session",
                     "c2a", ("WriteData", _STALE_OP, 0)),
                    ("net: inject stale WriteRequest from prior session",
                     "c2a", ("WriteRequest", _STALE_OP))):
                if channel_name == "a2c":
                    steps.append((label,
                                  pack(a2c=channel_add(a2c, message,
                                                       capacity),
                                       stale_used=stale_used + 1)))
                else:
                    steps.append((label,
                                  pack(c2a=channel_add(c2a, message,
                                                       capacity),
                                       stale_used=stale_used + 1)))
        return steps, violations


class ReadModel:
    """Byte-accurate read path: READ-REQ in, DATA back, stale-seq purge.

    The client retries the *same* sequence number on timeout (like
    ``_fetch_packet``); data packets carry (seq, generation) and the
    invariant is that a completed read returned current-generation
    bytes.  Stale injection plants a prior session's packet (old seq,
    stale generation) in the reply channel.
    """

    name = "bytes:read"
    client_machine = "read"
    agent_machine = "read-server"
    client_events = frozenset({
        "send ReadRequest", "recv DataPacket", "timeout"})
    agent_events = frozenset({"recv ReadRequest", "send DataPacket"})

    _SEQ = 1        # the current request's sequence number
    _OLD_SEQ = 0    # a prior session's sequence number

    def __init__(self, budget: AdversaryBudget, retransmit_bound: int = 2,
                 flags: SemanticFlags = SemanticFlags()):
        self.budget = budget
        self.retransmit_bound = retransmit_bound
        self.flags = flags

    # state: (phase, buffer_gen, retransmits, alive, c2a, a2c,
    #         drops, dups, crashes, stale_used)

    def initial_state(self):
        return ("IDLE", None, 0, True, (), (), 0, 0, 0, 0)

    def is_resting(self, state) -> bool:
        return state[0] in ("DONE", "ABORTED")

    def check_state(self, state):
        phase, buffer_gen = state[0], state[1]
        if phase == "DONE" and buffer_gen != _CURRENT:
            return (("safety", "byte lost: read completed with "
                     "stale-generation data in the reassembly buffer"),)
        return ()

    def successors(self, state):
        (phase, buffer_gen, retransmits, alive, c2a, a2c,
         drops, dups, crashes, stale_used) = state
        capacity = self.budget.channel_capacity
        steps: list[tuple[str, tuple]] = []
        violations: list[tuple[str, str, str]] = []

        def pack(phase=phase, buffer_gen=buffer_gen,
                 retransmits=retransmits, alive=alive, c2a=c2a, a2c=a2c,
                 drops=drops, dups=dups, crashes=crashes,
                 stale_used=stale_used):
            return (phase, buffer_gen, retransmits, alive, c2a, a2c,
                    drops, dups, crashes, stale_used)

        if phase == "IDLE":
            steps.append((
                f"client: send ReadRequest(seq={self._SEQ})",
                pack(phase="WAIT",
                     c2a=channel_add(c2a, ("ReadRequest", self._SEQ),
                                     capacity))))
        elif phase == "WAIT":
            if retransmits < self.retransmit_bound:
                steps.append((
                    "client: timeout, purge stale packets and resubmit "
                    f"(retransmit {retransmits + 1}/{self.retransmit_bound})",
                    pack(phase="IDLE", retransmits=retransmits + 1)))
            else:
                steps.append((
                    "client: timeout — retransmit bound reached, abort "
                    "cleanly", pack(phase="ABORTED")))
            for message in channel_items(a2c):
                remaining = channel_remove(a2c, message)
                _, seq, generation = message
                if seq == self._SEQ or self.flags.client_accepts_any_seq:
                    steps.append((
                        f"net: deliver DataPacket(seq={seq}, "
                        f"gen={generation}) -> client; read completes",
                        pack(phase="DONE", buffer_gen=generation,
                             a2c=remaining)))
                else:
                    steps.append((
                        f"client: purge stale DataPacket(seq={seq})",
                        pack(a2c=remaining)))
        else:  # DONE / ABORTED
            for message in channel_items(a2c):
                steps.append((
                    f"net: DataPacket(seq={message[1]}) arrives after "
                    "client finished, dropped by closed socket",
                    pack(a2c=channel_remove(a2c, message))))

        for message in channel_items(c2a):
            remaining = channel_remove(c2a, message)
            if not alive:
                steps.append((
                    "net: ReadRequest arrives at crashed agent, lost",
                    pack(c2a=remaining)))
                continue
            _, seq = message
            steps.append((
                f"net: deliver ReadRequest(seq={seq}) -> agent; agent "
                "serves current data",
                pack(c2a=remaining,
                     a2c=channel_add(a2c, ("DataPacket", seq, _CURRENT),
                                     capacity))))

        if drops < self.budget.max_drops:
            for message in channel_items(c2a):
                steps.append((f"net: drop {message[0]}",
                              pack(c2a=channel_remove(c2a, message),
                                   drops=drops + 1)))
            for message in channel_items(a2c):
                steps.append((f"net: drop {message[0]}",
                              pack(a2c=channel_remove(a2c, message),
                                   drops=drops + 1)))
        if dups < self.budget.max_duplicates:
            for message in channel_items(c2a):
                if len(c2a) < capacity:
                    steps.append((f"net: duplicate {message[0]}",
                                  pack(c2a=channel_add(c2a, message,
                                                       capacity),
                                       dups=dups + 1)))
            for message in channel_items(a2c):
                if len(a2c) < capacity:
                    steps.append((f"net: duplicate {message[0]}",
                                  pack(a2c=channel_add(a2c, message,
                                                       capacity),
                                       dups=dups + 1)))
        if alive and crashes < self.budget.max_crashes:
            steps.append(("agent: crash",
                          pack(alive=False, crashes=crashes + 1)))
        if not alive:
            steps.append(("agent: restart", pack(alive=True)))
        if stale_used < self.budget.max_stale:
            steps.append((
                "net: inject stale DataPacket from prior session "
                f"(seq={self._OLD_SEQ})",
                pack(a2c=channel_add(
                    a2c, ("DataPacket", self._OLD_SEQ, _STALE), capacity),
                    stale_used=stale_used + 1)))
        return steps, violations


# -- the --model entry point --------------------------------------------------


@dataclass(frozen=True)
class ModelConfig:
    """Bounds for one ``repro check --model`` run."""

    max_depth: int = 60
    retransmit_bound: int = 2
    packets: int = 2
    budget: AdversaryBudget = AdversaryBudget()
    scenarios: tuple[str, ...] = ()     # empty = all
    flags: SemanticFlags = SemanticFlags()

    def describe_bounds(self) -> str:
        return (f"depth<={self.max_depth} retransmits<={self.retransmit_bound} "
                f"packets={self.packets} {self.budget.describe()}")


@dataclass
class ScenarioStats:
    """Per-scenario exploration summary."""

    name: str
    states: int
    transitions: int
    depth_reached: int
    exhausted: bool
    violations: int

    def to_dict(self) -> dict:
        return {"name": self.name, "states": self.states,
                "transitions": self.transitions,
                "depth_reached": self.depth_reached,
                "exhausted": self.exhausted,
                "violations": self.violations}


@dataclass
class ModelStats:
    """Whole-run summary, reported alongside the findings."""

    bounds: str
    scenarios: list[ScenarioStats] = field(default_factory=list)

    @property
    def exhausted(self) -> bool:
        return all(s.exhausted for s in self.scenarios)

    @property
    def states(self) -> int:
        return sum(s.states for s in self.scenarios)

    def to_dict(self) -> dict:
        return {"bounds": self.bounds, "exhausted": self.exhausted,
                "states": self.states,
                "scenarios": [s.to_dict() for s in self.scenarios]}

    def render_text(self) -> str:
        lines = [f"model: bounds {self.bounds}"]
        for stats in self.scenarios:
            status = "exhausted" if stats.exhausted else "depth-capped"
            lines.append(
                f"model: {stats.name}: {stats.states} states, "
                f"{stats.transitions} transitions, depth "
                f"{stats.depth_reached}, {status}, "
                f"{stats.violations} violation(s)")
        return "\n".join(lines)


def _pair_scenarios(config: ModelConfig):
    for client_name, agent_name in MACHINE_PAIRS:
        name = f"pair:{client_name}"
        yield name, (lambda c=client_name, a=agent_name: PairModel(
            machine_by_name(c), machine_by_name(a), config.budget,
            retransmit_bound=config.retransmit_bound,
            send_bound=config.packets))


def _scenario_builders(config: ModelConfig) -> dict[str, Callable]:
    builders: dict[str, Callable] = dict(_pair_scenarios(config))
    builders["bytes:write"] = lambda: WriteModel(
        config.budget, retransmit_bound=config.retransmit_bound,
        packets=config.packets, flags=config.flags)
    builders["bytes:read"] = lambda: ReadModel(
        config.budget, retransmit_bound=config.retransmit_bound,
        flags=config.flags)
    return builders


def scenario_names(config: Optional[ModelConfig] = None) -> tuple[str, ...]:
    return tuple(_scenario_builders(config or ModelConfig()))


def build_scenario(name: str,
                   config: Optional[ModelConfig] = None):
    """Build one scenario's model (exposed for tests)."""
    return _scenario_builders(config or ModelConfig())[name]()


def _check_model_conformance(model, spec_path: Path) -> list[Finding]:
    """The semantic model must simulate exactly its machines' edges."""
    findings = []
    for machine_name, declared in ((model.client_machine,
                                    model.client_events),
                                   (model.agent_machine,
                                    model.agent_events)):
        machine = machine_by_name(machine_name)
        spec_events = {t.event for t in machine.transitions}
        for event in sorted(spec_events - declared):
            findings.append(Finding(
                rule_id="model-conformance", path=spec_path, line=1,
                message=f"[{model.name}] machine {machine_name} has edge "
                        f"event {event!r} the semantic model does not "
                        "simulate"))
        for event in sorted(declared - spec_events):
            findings.append(Finding(
                rule_id="model-conformance", path=spec_path, line=1,
                message=f"[{model.name}] semantic model simulates "
                        f"{event!r}, which is not an edge of machine "
                        f"{machine_name}"))
    return findings


def check_model(config: Optional[ModelConfig] = None,
                ) -> tuple[list[Finding], ModelStats]:
    """Run every selected scenario; returns (findings, stats)."""
    config = config or ModelConfig()
    spec_path = Path(__file__).resolve().parent / "spec.py"
    builders = _scenario_builders(config)
    selected = config.scenarios or tuple(builders)
    unknown = [name for name in selected if name not in builders]
    if unknown:
        raise ValueError(f"unknown model scenario(s): {', '.join(unknown)}; "
                         f"known: {', '.join(builders)}")
    findings: list[Finding] = []
    stats = ModelStats(bounds=config.describe_bounds())
    for name in selected:
        model = builders[name]()
        if hasattr(model, "client_events"):
            findings.extend(_check_model_conformance(model, spec_path))
        result = explore(model, config.max_depth)
        stats.scenarios.append(ScenarioStats(
            name=name, states=result.states,
            transitions=result.transitions,
            depth_reached=result.depth_reached,
            exhausted=result.exhausted,
            violations=len(result.violations)))
        for violation in result.violations:
            findings.append(Finding(
                rule_id=f"model-{violation.invariant}", path=spec_path,
                line=1, message=f"[{name}] {violation.format()}"))
        if not result.exhausted:
            findings.append(Finding(
                rule_id="model-depth", path=spec_path, line=1,
                message=f"[{name}] state space NOT exhausted at depth "
                        f"{config.max_depth}; raise --depth for a "
                        "conclusive run"))
    return findings, stats

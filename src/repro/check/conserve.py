"""Runtime byte-conservation sanitizer for the striped data path.

Striping scatters a logical byte range over agents; parity adds a
computed copy; the wire carries it all as packets.  Each hand-off is an
opportunity to leak or double-count bytes, and such bugs corrupt every
reported data-rate while leaving the protocol superficially healthy.
This module keeps a **ledger** of one invariant per hand-off, fed by the
engine's transfer-monitor hook (:meth:`Environment.add_transfer_monitor`):

* **striped writes** — the logical bytes of the request equal the sum of
  the per-agent region bytes plus the bytes deliberately skipped on
  failed agents (parity covers those);
* **wire accounting** — for every (operation, agent), the payload bytes
  streamed as ``WRITE-DATA`` packets (wire bytes minus the per-packet
  header), deduplicated by packet index so retransmits are not counted
  twice, equal that agent's region bytes — and a retransmitted index
  must carry the same payload size as the original;
* **parity** — the parity region is exactly ``stripes x unit_size``
  bytes (a one-byte truncation here silently breaks reconstruction);
* **striped reads** — the pieces placed into the client buffer tile the
  requested logical range exactly: no gaps, no overlapping bytes;
* **reconstruction** — a rebuilt unit is exactly ``unit_size`` bytes.

Any violation is recorded with the owning transfer id (``object#w3``,
``object#r1``) and surfaces through :meth:`ConservationLedger.assert_clean`
or the :func:`conserve` context manager::

    with conserve(env) as ledger:
        env.run(...)
    # raises ConservationError on any leak; ledger.errors lists them

The instrumented emitters in :mod:`repro.core.distribution` fire only
when a monitor is attached, so an un-sanitized run pays one falsy test
per data-path event.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ConservationError", "ConservationLedger", "conserve"]


class ConservationError(AssertionError):
    """Bytes were leaked, duplicated or mis-sized on the data path."""


@dataclass
class _OpRecord:
    """Everything the ledger observed about one transfer operation."""

    kind: str                    # 'write' | 'read'
    logical_offset: int
    logical_bytes: int
    #: agent index -> (region_offset, region_bytes) for data regions.
    regions: dict = field(default_factory=dict)
    #: agent index -> bytes deliberately not sent (failed, parity-covered).
    skipped: dict = field(default_factory=dict)
    #: (parity_bytes, expected_bytes) once the parity region is announced.
    parity: Optional[tuple] = None
    #: agent index -> {packet index -> payload bytes} (first transmission).
    wire: dict = field(default_factory=dict)
    #: (logical_offset, nbytes) pieces placed into the read buffer.
    pieces: list = field(default_factory=list)
    complete: bool = False


class ConservationLedger:
    """Byte ledger over the engine's transfer-monitor events.

    ``events_observed`` counts every monitor callback, which is what the
    kernel-events benchmark uses to price the sanitizer's overhead.
    """

    def __init__(self, env):
        self.env = env
        self.ops: dict[str, _OpRecord] = {}
        self.errors: list[str] = []
        self.events_observed = 0
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "ConservationLedger":
        if not self._installed:
            self.env.add_transfer_monitor(self._on_event)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.env.remove_transfer_monitor(self._on_event)
            self._installed = False

    @property
    def pending_ops(self) -> list[str]:
        """Operations that began but never completed (e.g. raised)."""
        return sorted(op for op, record in self.ops.items()
                      if not record.complete)

    def assert_clean(self) -> None:
        """Raise :class:`ConservationError` if any invariant was violated."""
        if self.errors:
            raise ConservationError(
                f"{len(self.errors)} byte-conservation violation(s):\n  "
                + "\n  ".join(self.errors))

    # -- event intake --------------------------------------------------------

    def _on_event(self, kind: str, **info) -> None:
        self.events_observed += 1
        handler = getattr(self, "_on_" + kind.replace("-", "_"), None)
        if handler is None:
            self.errors.append(f"unknown transfer event kind {kind!r}")
            return
        handler(**info)

    def _record(self, op) -> Optional[_OpRecord]:
        if op is None:
            return None
        record = self.ops.get(op)
        if record is None:
            self.errors.append(f"{op}: event before its begin event")
        return record

    def _on_write_begin(self, op, logical_offset, logical_bytes) -> None:
        self.ops[op] = _OpRecord("write", logical_offset, logical_bytes)

    def _on_write_region(self, op, agent, region_offset, nbytes) -> None:
        record = self._record(op)
        if record is None:
            return
        if agent in record.regions:
            self.errors.append(
                f"{op}: agent {agent} announced two data regions")
        record.regions[agent] = (region_offset, nbytes)

    def _on_write_skip(self, op, agent, nbytes) -> None:
        record = self._record(op)
        if record is None:
            return
        record.skipped[agent] = record.skipped.get(agent, 0) + nbytes

    def _on_write_parity(self, op, agent, nbytes, expected_bytes) -> None:
        record = self._record(op)
        if record is None:
            return
        record.parity = (nbytes, expected_bytes)
        # Wire packets for the parity agent reconcile against its region.
        record.regions.setdefault(agent, (None, nbytes))

    def _on_wire_data(self, op, agent, index, payload_bytes) -> None:
        record = self._record(op)
        if record is None:
            return
        seen = record.wire.setdefault(agent, {})
        previous = seen.get(index)
        if previous is None:
            seen[index] = payload_bytes
        elif previous != payload_bytes:
            self.errors.append(
                f"{op}: agent {agent} packet {index} retransmitted with "
                f"{payload_bytes} payload bytes (originally {previous})")

    def _on_write_end(self, op) -> None:
        record = self._record(op)
        if record is None:
            return
        record.complete = True
        self._check_write(op, record)

    def _on_read_begin(self, op, logical_offset, logical_bytes) -> None:
        self.ops[op] = _OpRecord("read", logical_offset, logical_bytes)

    def _on_read_data(self, op, agent, logical_offset, nbytes) -> None:
        record = self._record(op)
        if record is None:
            return
        record.pieces.append((logical_offset, nbytes))

    def _on_read_end(self, op) -> None:
        record = self._record(op)
        if record is None:
            return
        record.complete = True
        self._check_read(op, record)

    def _on_reconstruct_unit(self, op, stripe, agent, nbytes,
                             unit_size) -> None:
        if nbytes != unit_size:
            owner = op if op is not None else "rebuild"
            self.errors.append(
                f"{owner}: reconstructed unit of stripe {stripe} (agent "
                f"{agent}) is {nbytes} bytes, expected exactly {unit_size}")

    # -- the invariants -------------------------------------------------------

    def _check_write(self, op: str, record: _OpRecord) -> None:
        # The parity region is a computed copy: it reconciles against its
        # own expected size, and is excluded from logical-byte conservation.
        parity_agent = None
        if record.parity is not None:
            nbytes, expected = record.parity
            if nbytes != expected:
                self.errors.append(
                    f"{op}: parity region is {nbytes} bytes, expected "
                    f"{expected} (stripes x unit_size)")
            for agent, (offset, _region_bytes) in record.regions.items():
                if offset is None:
                    parity_agent = agent
        data_bytes = sum(nbytes for agent, (_, nbytes)
                         in record.regions.items() if agent != parity_agent)
        skipped = sum(record.skipped.values())
        if data_bytes + skipped != record.logical_bytes:
            self.errors.append(
                f"{op}: logical {record.logical_bytes} bytes != "
                f"{data_bytes} region bytes + {skipped} skipped bytes")
        for agent, (_, region_bytes) in record.regions.items():
            streamed = sum(record.wire.get(agent, {}).values())
            if streamed != region_bytes:
                self.errors.append(
                    f"{op}: agent {agent} streamed {streamed} unique wire "
                    f"payload bytes for a {region_bytes}-byte region")
        for agent in record.wire:
            if agent not in record.regions:
                self.errors.append(
                    f"{op}: agent {agent} received wire data with no "
                    "announced region")

    def _check_read(self, op: str, record: _OpRecord) -> None:
        placed = sum(nbytes for _, nbytes in record.pieces)
        if placed != record.logical_bytes:
            self.errors.append(
                f"{op}: {placed} bytes placed into a "
                f"{record.logical_bytes}-byte read buffer")
            return
        # Exact tiling: merged disjoint intervals must cover the range.
        span_start = record.logical_offset
        span_end = span_start + record.logical_bytes
        position = span_start
        for start, nbytes in sorted(record.pieces):
            if start < position:
                self.errors.append(
                    f"{op}: read pieces overlap at logical offset {start}")
                return
            if start > position:
                self.errors.append(
                    f"{op}: read gap at logical offset {position}")
                return
            position = start + nbytes
        if record.pieces and position != span_end:
            self.errors.append(
                f"{op}: read coverage ends at {position}, expected "
                f"{span_end}")


@contextmanager
def conserve(env, raise_on_leak: bool = True):
    """Attach a :class:`ConservationLedger` for the duration of a block.

    ::

        with conserve(env) as ledger:
            env.run(...)

    On exit the ledger detaches and — with ``raise_on_leak`` —
    :meth:`~ConservationLedger.assert_clean` raises on any violation.
    """
    ledger = ConservationLedger(env).install()
    try:
        yield ledger
    finally:
        ledger.uninstall()
    if raise_on_leak:
        ledger.assert_clean()

"""The AST lint engine: file walking, rule dispatch, suppressions.

A :class:`Rule` visits one module's AST and yields :class:`Finding`
objects.  The engine parses each file once, fans the tree out to every
rule, and filters the results through ``# repro: allow[rule-id]``
suppression comments (on the flagged line or the line directly above).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .findings import Finding, Severity

__all__ = ["Rule", "LintEngine", "iter_python_files", "RULE_GROUPS",
           "SUPPRESS_PATTERN"]

#: ``# repro: allow[rule-id]`` (several ids comma-separated, ``*`` for all).
SUPPRESS_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_\-*,\s]+)\]")

#: Group aliases for suppression comments: ``allow[group]`` covers every
#: rule id starting with one of the listed prefixes.
RULE_GROUPS: dict[str, tuple[str, ...]] = {
    "units": ("unit-",),
    "aliasing": ("view-escape", "hidden-copy", "pool-leak"),
    "effects": ("effect-",),
}

#: Directories never descended into (caches, checker test fixtures).
#: The ``fixtures`` entry keeps broad walks (e.g. the nightly sweep over
#: ``tests/``) out of the intentionally-buggy mutation fixtures; it only
#: applies *below* the requested root, so pointing a pass directly at a
#: fixture directory (as the fixture tests do) still audits it.
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache", "fixtures"}


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`, yielding findings.  ``exempt_suffixes`` names path
    suffixes (POSIX style) where the rule never applies — e.g. the RNG
    containment rule exempts ``des/random_streams.py`` itself.
    """

    rule_id: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR
    exempt_suffixes: tuple[str, ...] = ()

    def applies_to(self, path: Path) -> bool:
        """False when ``path`` is exempt from this rule."""
        posix = path.as_posix()
        return not any(posix.endswith(suffix)
                       for suffix in self.exempt_suffixes)

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, path: Path, node: ast.AST, message: str) -> Finding:
        """Convenience constructor anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            message=message,
            severity=self.severity,
        )


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``root`` (a file path is yielded as-is)."""
    root = Path(root)
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        below_root = path.relative_to(root).parts[:-1]
        if not any(part in _SKIP_DIR_NAMES for part in below_root):
            yield path


def _suppressed_rules(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed on that line.

    A trailing ``allow`` comment covers only its own line; a standalone
    comment line (nothing but the comment) covers the line below it, so
    a suppression can sit above the statement without silencing an
    unrelated neighbour.
    """
    allowed: dict[int, set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_PATTERN.search(text)
        if not match:
            continue
        ids = {piece.strip() for piece in match.group(1).split(",")}
        ids.discard("")
        standalone = text.lstrip().startswith("#")
        covered = (number, number + 1) if standalone else (number,)
        for line in covered:
            allowed.setdefault(line, set()).update(ids)
    return allowed


class LintEngine:
    """Parses files and runs every registered rule over them."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        if rules is None:
            from .rules import DEFAULT_RULES
            rules = [factory() for factory in DEFAULT_RULES]
        self.rules: list[Rule] = list(rules)

    def check_file(self, path: Path) -> list[Finding]:
        """All findings in one file (empty on syntax errors is *not* an
        option: an unparseable file is itself reported)."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding(
                rule_id="syntax-error",
                path=path,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            )]
        allowed = _suppressed_rules(source)
        findings = []
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            for finding in rule.check(tree, path):
                granted = allowed.get(finding.line, ())
                if finding.rule_id in granted or "*" in granted:
                    continue
                if any(group in granted
                       and finding.rule_id.startswith(prefixes)
                       for group, prefixes in RULE_GROUPS.items()):
                    continue  # allow[group] covers the whole pass
                findings.append(finding)
        return findings

    def check_tree(self, root: Path) -> list[Finding]:
        """All findings under a directory tree (or in a single file)."""
        findings: list[Finding] = []
        for path in iter_python_files(Path(root)):
            findings.extend(self.check_file(path))
        return findings

    def check_paths(self, paths: Iterable[Path]) -> list[Finding]:
        """All findings across an explicit set of files/directories."""
        findings: list[Finding] = []
        for path in paths:
            findings.extend(self.check_tree(Path(path)))
        return findings

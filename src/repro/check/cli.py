"""The ``repro check`` subcommand (also ``python -m repro.check``)."""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .adversary import AdversaryBudget
from .aliasing import alias_rule_registry
from .effects import analyze_effects, effect_rule_registry
from .findings import Severity
from .lint import LintEngine, iter_python_files
from .model import ModelConfig, check_model, scenario_names
from .protocol import check_protocol
from .races import race_rule_registry
from .report import exit_code, render_json, render_text
from .rules import rule_registry
from .units import unit_rule_registry

__all__ = ["add_check_arguments", "run_check_command", "main"]

#: Package subdirectories the ``--races`` pass audits by default.  The
#: race lints model ``yield`` as a preemption point, which only makes
#: sense for code that runs inside the DES.
RACE_SCAN_SUBDIRS = ("core", "des", "simnet", "simdisk")


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the check options to an (sub)parser."""
    parser.add_argument(
        "--root", default=None,
        help="package directory to audit (default: the installed repro "
             "package)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report (for CI)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all); "
             f"known: {', '.join(sorted(rule_registry()))}; under "
             f"--races: {', '.join(sorted(race_rule_registry()))}; under "
             f"--units: {', '.join(sorted(unit_rule_registry()))}; under "
             f"--aliasing: {', '.join(sorted(alias_rule_registry()))}; "
             f"under --effects: {', '.join(sorted(effect_rule_registry()))}")
    parser.add_argument(
        "--no-protocol", action="store_true",
        help="skip the protocol state-machine checker")
    parser.add_argument(
        "--races", action="store_true",
        help="run the interleaving race lints (yield-rmw, lock-order) "
             "instead of the determinism pass; audits the DES-facing "
             "subpackages (" + ", ".join(RACE_SCAN_SUBDIRS) + ") unless "
             "--root is given")
    parser.add_argument(
        "--units", action="store_true",
        help="run the dimensional-analysis lints (unit-mismatch, "
             "unit-bitbyte, unit-magic) instead of the determinism pass; "
             "audits the given paths (or --root, or the installed package)")
    parser.add_argument(
        "--aliasing", action="store_true",
        help="run the zero-copy safety lints (view-escape, hidden-copy, "
             "pool-leak) instead of the determinism pass; audits the given "
             "paths (or --root, or the installed package)")
    parser.add_argument(
        "--effects", action="store_true",
        help="run the call-graph effect/purity analysis (effect-ambient-"
             "read, effect-global-write, effect-unkeyed-input, effect-"
             "unseeded-random): cache-soundness, worker-hermeticity and "
             "bench-determinism contracts over the given paths (or "
             "--root, or the installed package)")
    parser.add_argument(
        "--all", action="store_true", dest="all_passes",
        help="run every pass (determinism+protocol, races, units, "
             "aliasing, model, effects) and emit one merged report with "
             "per-pass wall time and a single exit code")
    parser.add_argument(
        "--model", action="store_true",
        help="run the protocol model checker: exhaustively explore the "
             "spec machines composed with an adversarial network (drop, "
             "duplicate, reorder, crash, stale replies) up to the "
             "configured bounds")
    parser.add_argument(
        "--depth", type=int, default=60,
        help="model: maximum schedule length to explore (default 60; "
             "the run reports whether the space was exhausted)")
    parser.add_argument(
        "--retransmits", type=int, default=2,
        help="model: client retransmit budget K — every transfer must "
             "complete or cleanly abort within K retransmits (default 2)")
    parser.add_argument(
        "--scenarios", default=None,
        help="model: comma-separated scenario names to run "
             f"(default: all of {', '.join(scenario_names())})")
    parser.add_argument(
        "--fail-on", choices=("error", "warning"), default="error",
        help="severity threshold for a nonzero exit: 'error' (default) "
             "fails only on errors, 'warning' fails on any finding")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to audit (e.g. `repro check --units "
             "src/`); overrides --root")


def _selected_rules(spec: str | None, registry: dict):
    if spec is None:
        return None  # engine default: everything in the registry
    chosen = []
    for rule_id in (piece.strip() for piece in spec.split(",")):
        if not rule_id:
            continue
        if rule_id not in registry:
            raise SystemExit(
                f"unknown rule {rule_id!r}; known rules: "
                f"{', '.join(sorted(registry))}")
        chosen.append(registry[rule_id]())
    return chosen


def _explicit_paths(args) -> list[Path] | None:
    """Positional paths, validated; None when none were given."""
    if not getattr(args, "paths", None):
        return None
    roots = [Path(piece) for piece in args.paths]
    for root in roots:
        if not root.exists():
            raise SystemExit(f"no such path: {root}")
    return roots


def _race_roots(args) -> list[Path]:
    """The directories the ``--races`` pass walks."""
    explicit = _explicit_paths(args)
    if explicit is not None:
        return explicit
    if args.root is not None:
        root = Path(args.root)
        if not root.exists():
            raise SystemExit(f"no such path: {root}")
        return [root]
    package = Path(__file__).resolve().parent.parent
    return [package / name for name in RACE_SCAN_SUBDIRS
            if (package / name).exists()]


def _fail_threshold(args) -> Severity:
    return (Severity.WARNING if getattr(args, "fail_on", "error") == "warning"
            else Severity.ERROR)


def _run_model(args) -> int:
    scenarios = ()
    if args.scenarios:
        scenarios = tuple(piece.strip() for piece in args.scenarios.split(",")
                          if piece.strip())
    config = ModelConfig(max_depth=args.depth,
                         retransmit_bound=args.retransmits,
                         budget=AdversaryBudget(),
                         scenarios=scenarios)
    try:
        findings, stats = check_model(config)
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        print(render_json(findings, model_stats=stats))
    else:
        print(render_text(findings, model_stats=stats))
    return exit_code(findings, fail_on=_fail_threshold(args))


def _run_races(args) -> int:
    registry = race_rule_registry()
    rules = _selected_rules(args.rules, registry)
    if rules is None:
        rules = [rule() for rule in registry.values()]
    engine = LintEngine(rules=rules)
    findings = []
    checked = 0
    for root in _race_roots(args):
        findings.extend(engine.check_tree(root))
        checked += sum(1 for _ in iter_python_files(root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    if args.json:
        print(render_json(findings, checked_paths=checked))
    else:
        print(render_text(findings, checked_paths=checked))
    return exit_code(findings, fail_on=_fail_threshold(args))


def _unit_roots(args) -> list[Path]:
    """The paths the ``--units`` pass walks."""
    explicit = _explicit_paths(args)
    if explicit is not None:
        return explicit
    if args.root is not None:
        root = Path(args.root)
        if not root.exists():
            raise SystemExit(f"no such path: {root}")
        return [root]
    return [Path(__file__).resolve().parent.parent]


def _run_units(args) -> int:
    registry = unit_rule_registry()
    rules = _selected_rules(args.rules, registry)
    if rules is None:
        rules = [rule() for rule in registry.values()]
    engine = LintEngine(rules=rules)
    findings = []
    checked = 0
    for root in _unit_roots(args):
        findings.extend(engine.check_tree(root))
        checked += sum(1 for _ in iter_python_files(root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    if args.json:
        print(render_json(findings, checked_paths=checked))
    else:
        print(render_text(findings, checked_paths=checked))
    return exit_code(findings, fail_on=_fail_threshold(args))


def _run_aliasing(args) -> int:
    registry = alias_rule_registry()
    rules = _selected_rules(args.rules, registry)
    if rules is None:
        rules = [rule() for rule in registry.values()]
    engine = LintEngine(rules=rules)
    findings = []
    checked = 0
    for root in _unit_roots(args):
        findings.extend(engine.check_tree(root))
        checked += sum(1 for _ in iter_python_files(root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    if args.json:
        print(render_json(findings, checked_paths=checked))
    else:
        print(render_text(findings, checked_paths=checked))
    return exit_code(findings, fail_on=_fail_threshold(args))


def _run_effects(args) -> int:
    chosen = None
    if args.rules:
        registry = effect_rule_registry()
        chosen = set()
        for rule_id in (piece.strip() for piece in args.rules.split(",")):
            if not rule_id:
                continue
            if rule_id not in registry:
                raise SystemExit(
                    f"unknown rule {rule_id!r}; known rules: "
                    f"{', '.join(sorted(registry))}")
            chosen.add(rule_id)
    roots = _unit_roots(args)
    findings, stats = analyze_effects(roots)
    if chosen is not None:
        findings = [f for f in findings if f.rule_id in chosen]
    checked = sum(sum(1 for _ in iter_python_files(root)) for root in roots)
    if args.json:
        print(render_json(findings, checked_paths=checked,
                          effects_stats=stats))
    else:
        print(render_text(findings, checked_paths=checked,
                          effects_stats=stats))
    return exit_code(findings, fail_on=_fail_threshold(args))


def _run_all(args) -> int:
    """Every pass, one merged report, one exit code (``--all``)."""
    package = Path(__file__).resolve().parent.parent
    explicit = _explicit_paths(args)
    if explicit is not None:
        lint_roots = explicit
    elif args.root is not None:
        root = Path(args.root)
        if not root.exists():
            raise SystemExit(f"no such path: {root}")
        lint_roots = [root]
    else:
        lint_roots = [package]
    race_roots = explicit if explicit is not None else [
        package / name for name in RACE_SCAN_SUBDIRS
        if (package / name).exists()]

    merged = []
    passes = []
    model_stats = None
    effects_stats = None

    def timed(name, runner):
        start = time.perf_counter()  # repro: allow[wall-clock]
        found = runner()
        seconds = time.perf_counter() - start  # repro: allow[wall-clock]
        merged.extend(found)
        passes.append({"name": name, "seconds": round(seconds, 3),
                       "findings": len(found)})

    def determinism():
        engine = LintEngine()
        found = []
        for root in lint_roots:
            found.extend(engine.check_tree(root))
            if not args.no_protocol:
                found.extend(check_protocol(root))
        return found

    def per_file_pass(registry, roots):
        engine = LintEngine(
            rules=[rule() for rule in registry.values()])
        found = []
        for root in roots:
            found.extend(engine.check_tree(root))
        return found

    def model():
        nonlocal model_stats
        config = ModelConfig(max_depth=args.depth,
                             retransmit_bound=args.retransmits,
                             budget=AdversaryBudget())
        found, model_stats = check_model(config)
        return found

    def effects():
        nonlocal effects_stats
        found, effects_stats = analyze_effects(lint_roots)
        return found

    timed("determinism", determinism)
    timed("races", lambda: per_file_pass(race_rule_registry(), race_roots))
    timed("units", lambda: per_file_pass(unit_rule_registry(), lint_roots))
    timed("aliasing",
          lambda: per_file_pass(alias_rule_registry(), lint_roots))
    timed("model", model)
    timed("effects", effects)

    merged.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    checked = sum(sum(1 for _ in iter_python_files(root))
                  for root in lint_roots)
    if args.json:
        print(render_json(merged, checked_paths=checked,
                          model_stats=model_stats,
                          effects_stats=effects_stats, passes=passes))
    else:
        print(render_text(merged, checked_paths=checked,
                          model_stats=model_stats,
                          effects_stats=effects_stats, passes=passes))
    return exit_code(merged, fail_on=_fail_threshold(args))


def run_check_command(args) -> int:
    """Execute ``repro check`` with parsed ``args``; returns exit code."""
    if args.list_rules:
        for rule_id, rule in sorted(rule_registry().items()):
            print(f"{rule_id:<18} {rule.summary}")
        for rule_id, rule in sorted(race_rule_registry().items()):
            print(f"{rule_id:<18} {rule.summary} [--races]")
        for rule_id, rule in sorted(unit_rule_registry().items()):
            print(f"{rule_id:<18} {rule.summary} [--units]")
        for rule_id, rule in sorted(alias_rule_registry().items()):
            print(f"{rule_id:<18} {rule.summary} [--aliasing]")
        for rule_id, rule in sorted(effect_rule_registry().items()):
            print(f"{rule_id:<22} {rule.summary} [--effects]")
        print(f"{'protocol-spec':<18} spec vocabulary matches "
              "agent_protocol.py")
        print(f"{'protocol-machine':<18} state machines are sound "
              "(reachability, timeout edges)")
        print(f"{'protocol-transition':<18} every send has a matching "
              "receive on the other side")
        print(f"{'protocol-timeout':<18} lossy-transport waits are "
              "timeout-guarded")
        print(f"{'protocol-conformance':<18} spec machine edges match "
              "implemented send/recv edges both ways")
        print(f"{'model-deadlock':<18} no stuck composite state "
              "[--model]")
        print(f"{'model-unhandled':<18} every delivered message has a "
              "transition or an ignore rule [--model]")
        print(f"{'model-livelock':<18} every transfer completes or "
              "cleanly aborts within the retransmit bound [--model]")
        print(f"{'model-safety':<18} no byte lost or duplicated "
              "(conservation contract) [--model]")
        print(f"{'model-conformance':<18} semantic models simulate "
              "exactly the spec machines' edges [--model]")
        return 0

    if args.all_passes:
        return _run_all(args)

    if args.model:
        return _run_model(args)

    if args.effects:
        return _run_effects(args)

    if args.races:
        return _run_races(args)

    if args.units:
        return _run_units(args)

    if args.aliasing:
        return _run_aliasing(args)

    explicit = _explicit_paths(args)
    if explicit is not None:
        root = explicit[0] if len(explicit) == 1 else None
        if root is None:
            raise SystemExit(
                "the default pass audits one root; pass a single path")
    elif args.root is None:
        root = Path(__file__).resolve().parent.parent
    else:
        root = Path(args.root)
    if not root.exists():
        raise SystemExit(f"no such path: {root}")

    engine = LintEngine(rules=_selected_rules(args.rules, rule_registry()))
    findings = engine.check_tree(root)
    if not args.no_protocol:
        findings.extend(check_protocol(root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    checked = sum(1 for _ in iter_python_files(root))
    if args.json:
        print(render_json(findings, checked_paths=checked))
    else:
        print(render_text(findings, checked_paths=checked))
    return exit_code(findings, fail_on=_fail_threshold(args))


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.check``."""
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Determinism & protocol-invariant checks for the "
                    "Swift reproduction.")
    add_check_arguments(parser)
    return run_check_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

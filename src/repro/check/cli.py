"""The ``repro check`` subcommand (also ``python -m repro.check``)."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .lint import LintEngine, iter_python_files
from .protocol import check_protocol
from .report import exit_code, render_json, render_text
from .rules import rule_registry

__all__ = ["add_check_arguments", "run_check_command", "main"]


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the check options to an (sub)parser."""
    parser.add_argument(
        "--root", default=None,
        help="package directory to audit (default: the installed repro "
             "package)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report (for CI)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all); "
             f"known: {', '.join(sorted(rule_registry()))}")
    parser.add_argument(
        "--no-protocol", action="store_true",
        help="skip the protocol state-machine checker")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")


def _selected_rules(spec: str | None):
    registry = rule_registry()
    if spec is None:
        return None  # engine default: everything
    chosen = []
    for rule_id in (piece.strip() for piece in spec.split(",")):
        if not rule_id:
            continue
        if rule_id not in registry:
            raise SystemExit(
                f"unknown rule {rule_id!r}; known rules: "
                f"{', '.join(sorted(registry))}")
        chosen.append(registry[rule_id]())
    return chosen


def run_check_command(args) -> int:
    """Execute ``repro check`` with parsed ``args``; returns exit code."""
    if args.list_rules:
        for rule_id, rule in sorted(rule_registry().items()):
            print(f"{rule_id:<18} {rule.summary}")
        print(f"{'protocol-spec':<18} spec vocabulary matches "
              "agent_protocol.py")
        print(f"{'protocol-machine':<18} state machines are sound "
              "(reachability, timeout edges)")
        print(f"{'protocol-transition':<18} every send has a matching "
              "receive on the other side")
        print(f"{'protocol-timeout':<18} lossy-transport waits are "
              "timeout-guarded")
        return 0

    if args.root is None:
        root = Path(__file__).resolve().parent.parent
    else:
        root = Path(args.root)
    if not root.exists():
        raise SystemExit(f"no such path: {root}")

    engine = LintEngine(rules=_selected_rules(args.rules))
    findings = engine.check_tree(root)
    if not args.no_protocol:
        findings.extend(check_protocol(root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    checked = sum(1 for _ in iter_python_files(root))
    if args.json:
        print(render_json(findings, checked_paths=checked))
    else:
        print(render_text(findings, checked_paths=checked))
    return exit_code(findings)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.check``."""
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Determinism & protocol-invariant checks for the "
                    "Swift reproduction.")
    add_check_arguments(parser)
    return run_check_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Dynamic happens-before race detection for DES runs.

A discrete-event run is sequential, so "race" here means *schedule
sensitivity*: two conflicting accesses to one shared object that are

* at the **same simulated time** — only same-timestamp ties can be
  reordered by the calendar's tie-break (earlier-time events always run
  first, whatever the tie-break does), and
* **unordered by happens-before** — neither access's process segment is
  a causal ancestor of the other's, so the tie-break really could run
  them in either order.

Such a pair is exactly what the schedule-perturbation harness
(:mod:`repro.check.perturb`) would flip — this detector finds it in a
single run and reports both stack traces.

The happens-before relation is tracked with per-process vector clocks
fed by the engine's monitor hooks:

* **scheduling** stamps every event with the logical clock of the
  segment that scheduled it (:meth:`Environment.add_schedule_monitor`);
* **stepping** joins a popped event's clock into every process it
  resumes, and into anything scheduled from its callbacks
  (:meth:`Environment.add_step_monitor`);
* **resources** add a release→acquire edge so serialized holders are
  ordered (:meth:`Environment.add_resource_monitor`).

Accesses come from the engine's access instrumentation (``Resource``
queue mutations, ``Store`` puts/gets/purges) and from any stats
accumulator handed to :meth:`RaceDetector.watch`.

Usage::

    from repro.check import detect_races

    with detect_races(model.env, watch=[model.stats]) as detector:
        model.run()
    assert not detector.races, detector.format_races()
"""

from __future__ import annotations

import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..des.callback import CallbackProcess
from ..des.process import Process

#: What counts as "a process" for segment bookkeeping: generator
#: processes and callback-mode state machines both own vector-clock
#: entries — a bound state method's ``__self__`` identifies its machine
#: exactly as a generator resume callback identifies its Process.
_PROCESS_TYPES = (Process, CallbackProcess)

if TYPE_CHECKING:  # pragma: no cover
    from ..des.engine import Environment

__all__ = ["RaceDetector", "RaceReport", "AccessRecord", "RaceError",
           "detect_races"]

#: Vector clocks are plain dicts: pid -> segment counter.
_Clock = dict

#: A happens-before stamp: a tuple of ``(clock, pid, count)`` triples.
#:
#: Stamping is O(1): instead of copying the live clock dict for every
#: scheduled event and recorded access (the dominant cost of running
#: under the detector), a stamp *references* the stamping process's
#: live clock and carries the stamp-time value of that process's own
#: entry as an override.  Copy-on-write discipline makes the reference
#: sound: a live clock is never joined into in place (cross-segment
#: resumes replace it with a fresh merged dict), so the only entry that
#: can move after stamping is the owner's segment counter — exactly the
#: one the override pins.  The effective vector of a stamp is the
#: pointwise max over its triples; almost every stamp has one triple
#: (a release→acquire edge appends the stored release stamp).
_Stamp = tuple

#: Pseudo-pid for the root segment (model setup, before the first step).
_ROOT_PID = 0


def _effective_get(stamp: _Stamp, pid: int) -> int:
    """``pid``'s entry in the effective vector of ``stamp``."""
    best = 0
    for clock, own_pid, count in stamp:
        value = count if pid == own_pid else clock.get(pid, 0)
        if value > best:
            best = value
    return best


def _happens_before(earlier: _Stamp, later: _Stamp) -> bool:
    """True when ``earlier`` ≤ ``later`` componentwise (causally ordered)."""
    for clock, own_pid, count in earlier:
        for pid, value in clock.items():
            if pid == own_pid:
                value = count
            if value and _effective_get(later, pid) < value:
                return False
        if count and own_pid not in clock \
                and _effective_get(later, own_pid) < count:
            return False
    return True


class RaceError(AssertionError):
    """Raised by :meth:`RaceDetector.assert_clean` when races were found."""


@dataclass(frozen=True)
class AccessRecord:
    """One instrumented access to a shared object."""

    owner: str
    label: str
    is_write: bool
    clock: _Stamp
    stack: str

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        text = f"{kind} by {self.owner}"
        if self.stack:
            text += "\n" + self.stack
        return text


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting, tie-break-reorderable accesses to one object."""

    time: float
    label: str
    obj_repr: str
    first: AccessRecord
    second: AccessRecord

    def format(self) -> str:
        return (
            f"race at t={self.time:.9f} on {self.obj_repr} ({self.label}): "
            "two accesses at the same timestamp with no happens-before "
            "order — the calendar tie-break decides which runs first\n"
            f"--- first {self.first.describe()}\n"
            f"--- second {self.second.describe()}")


class RaceDetector:
    """Vector-clock happens-before tracker attached to one environment."""

    #: Stop accumulating after this many reports (a racy model can
    #: conflict on every event; the first few localize the bug).
    MAX_RACES = 64

    #: Same-object operation pairs that commute: either order produces
    #: the identical final state, so a tie-break flip is invisible and
    #: reporting it would be a false alarm.  An enqueue and a release on
    #: one Resource commute (the enqueuer takes its ticket and the freed
    #: server goes to the head waiter either way); two releases each free
    #: their own slot; a Store put and get pair up the same item whether
    #: the item or the taker arrives first.  What does NOT commute —
    #: and stays a conflict — is enqueue/enqueue (ticket order decides
    #: FIFO grant order), put/put and get/get (buffer order), and purge
    #: against anything.
    COMMUTING = frozenset([
        frozenset(["Resource.request", "Resource.release"]),
        frozenset(["Resource.release"]),
        frozenset(["Store.put", "Store.get"]),
    ])

    def __init__(self, env: "Environment", include_stacks: bool = True,
                 stack_depth: int = 8):
        self.env = env
        self.include_stacks = include_stacks
        self.stack_depth = stack_depth
        #: Confirmed schedule-sensitivity reports, in detection order.
        self.races: list[RaceReport] = []
        self._pids: dict[int, int] = {}
        self._owner_labels: dict[int, str] = {}
        #: COMMUTING flattened to ordered pairs, so the hot comparison
        #: loop does one tuple lookup instead of building a frozenset.
        self._commuting: set[tuple] = set()
        for pair in self.COMMUTING:
            members = tuple(pair)
            if len(members) == 1:
                self._commuting.add((members[0], members[0]))
            else:
                first, second = members
                self._commuting.add((first, second))
                self._commuting.add((second, first))
        self._pid_refs: list = []          # keeps id() keys unique
        self._next_pid = _ROOT_PID
        self._clocks: dict[int, _Clock] = {_ROOT_PID: {_ROOT_PID: 1}}
        self._root_stamp: _Stamp = ((self._clocks[_ROOT_PID], _ROOT_PID, 1),)
        #: Causal context for callback-phase scheduling (the stamp of the
        #: event currently being processed).
        self._current: _Stamp = self._root_stamp
        #: (request, clock) captured at grant time, merged into the grant
        #: event when it is scheduled a moment later.
        self._pending_acquire: Optional[tuple] = None
        #: id(obj) -> (timestamp, [AccessRecord...]) for the current time.
        self._history: dict[int, tuple] = {}
        self._watched: list[tuple] = []    # (obj, previous observer)
        self._obj_refs: list = []          # keeps history id() keys unique
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        """Attach to the environment's monitor hooks."""
        if self._installed:  # pragma: no cover - defensive
            return
        self.env.add_schedule_monitor(self._on_schedule)
        self.env.add_step_monitor(self._on_step)
        self.env.add_resource_monitor(self._on_resource)
        self.env.add_access_monitor(self._on_access)
        self._installed = True

    def uninstall(self) -> None:
        """Detach every hook and restore watched observers."""
        if not self._installed:  # pragma: no cover - defensive
            return
        self.env.remove_schedule_monitor(self._on_schedule)
        self.env.remove_step_monitor(self._on_step)
        self.env.remove_resource_monitor(self._on_resource)
        self.env.remove_access_monitor(self._on_access)
        for obj, previous in self._watched:
            obj.observer = previous
        self._watched.clear()
        self._installed = False

    def watch(self, obj, label: Optional[str] = None) -> None:
        """Track accesses to a stats accumulator (anything exposing the
        ``observer`` hook of :class:`~repro.des.stats.OnlineStats` /
        :class:`~repro.des.stats.Histogram`)."""
        if not hasattr(obj, "observer"):
            raise TypeError(
                f"{obj!r} has no observer hook; watch() takes stats "
                "accumulators (OnlineStats, Histogram)")
        name = label or type(obj).__name__
        previous = obj.observer

        def hook(instance, _name=name, _previous=previous):
            if _previous is not None:
                _previous(instance)
            self._on_access(instance, _name, True)

        obj.observer = hook
        self._watched.append((obj, previous))

    def assert_clean(self) -> None:
        """Raise :class:`RaceError` listing every detected race."""
        if self.races:
            raise RaceError(self.format_races())

    def format_races(self) -> str:
        """All reports as one human-readable block."""
        count = len(self.races)
        header = (f"{count} schedule-sensitive access pair(s) detected"
                  + (" (truncated)" if count >= self.MAX_RACES else ""))
        return "\n\n".join([header] + [r.format() for r in self.races])

    # -- clock plumbing -----------------------------------------------------

    def _pid(self, process) -> int:
        key = id(process)
        pid = self._pids.get(key)
        if pid is None:
            self._next_pid += 1
            pid = self._next_pid
            self._pids[key] = pid
            self._pid_refs.append(process)
        return pid

    def _segment_context(self) -> _Stamp:
        """The stamp of whatever is executing right now — O(1).

        Process segments stamp a reference to their live clock plus the
        current value of their own entry (the only one that can advance
        before the stamp is read); the callback phase re-stamps the
        popped event's own stamp, which is already frozen.
        """
        process = self.env.active_process
        if process is None:
            return self._current
        pid = self._pid(process)
        own = self._clocks.get(pid)
        if own is None:  # pragma: no cover - defensive (resume seeds it)
            own = self._clocks[pid] = {pid: 1}
        return ((own, pid, own[pid]),)

    @staticmethod
    def _merged(stamp: _Stamp) -> _Clock:
        """The effective vector of ``stamp`` as a fresh dict."""
        clock, own_pid, count = stamp[0]
        merged = dict(clock)
        if count:
            merged[own_pid] = count
        for clock, own_pid, count in stamp[1:]:
            for other, value in clock.items():
                if other == own_pid:
                    value = count
                if merged.get(other, 0) < value:
                    merged[other] = value
            if count and merged.get(own_pid, 0) < count:
                merged[own_pid] = count
        return merged

    def _on_schedule(self, event, active_process) -> None:
        stamp = self._segment_context()
        pending = self._pending_acquire
        if pending is not None and pending[0] is event:
            # The grant event carries the releaser's stamp too, so the
            # next holder is ordered after the previous one.
            stamp = stamp + pending[1]
            self._pending_acquire = None
        event._hb_clock = stamp

    def _on_step(self, when, event) -> None:
        stamp = getattr(event, "_hb_clock", None)
        if stamp is None:
            stamp = self._root_stamp
        self._current = stamp
        for callback in (event.callbacks or ()):
            process = getattr(callback, "__self__", None)
            if isinstance(process, _PROCESS_TYPES):
                pid = self._pid(process)
                own = self._clocks.get(pid)
                if own is None:
                    # First resume: the pid is fresh, so no clock can
                    # mention it yet — inherit the effective vector.
                    own = self._merged(stamp)
                    own[pid] = 1
                    self._clocks[pid] = own
                elif all(clock is own for clock, _p, _c in stamp):
                    # The waking event was stamped by this process
                    # itself (it scheduled its own wake-up, the common
                    # case): a self-join is a no-op, so only the
                    # segment counter moves.
                    own[pid] += 1
                else:
                    # Cross-segment join.  The current dict may be
                    # referenced by earlier stamps, so mutate a copy —
                    # this is what keeps stamped clocks frozen.
                    joined = dict(own)
                    for clock, own_pid, count in stamp:
                        if clock is own:
                            continue
                        for other, value in clock.items():
                            if other == own_pid:
                                value = count
                            if joined.get(other, 0) < value:
                                joined[other] = value
                        if count and joined.get(own_pid, 0) < count:
                            joined[own_pid] = count
                    joined[pid] = joined.get(pid, 0) + 1  # new segment
                    self._clocks[pid] = joined

    def _on_resource(self, action: str, resource, request) -> None:
        if action == "release":
            resource._hb_release = self._segment_context()
        elif action == "acquire":
            stored = getattr(resource, "_hb_release", None)
            if stored is not None:
                self._pending_acquire = (request, stored)

    # -- conflict detection -------------------------------------------------

    def _on_access(self, obj, label: str, is_write: bool) -> None:
        when = self.env.now
        snapshot = self._segment_context()
        # Records are plain tuples on the hot path; the AccessRecord
        # dataclasses the reports expose are only materialized for the
        # (rare) confirmed races.
        record = (label, is_write, snapshot,
                  self._owner_label(),
                  self._stack() if self.include_stacks else "")
        key = id(obj)
        entry = self._history.get(key)
        if entry is None or entry[0] != when:
            self._obj_refs.append(obj)
            records: list[tuple] = []
            self._history[key] = (when, records)
        else:
            records = entry[1]
        if len(self.races) < self.MAX_RACES:
            commuting = self._commuting
            for previous in records:
                prev_label, prev_write, prev_clock = previous[:3]
                if not (prev_write or is_write):
                    continue
                if (prev_label, label) in commuting:
                    continue
                if prev_clock == snapshot:  # same segment: ordered
                    continue
                if _happens_before(prev_clock, snapshot):
                    continue
                if _happens_before(snapshot, prev_clock):
                    continue
                self.races.append(RaceReport(
                    time=when, label=label, obj_repr=repr(obj),
                    first=self._materialize(previous),
                    second=self._materialize(record)))
                if len(self.races) >= self.MAX_RACES:
                    break
        records.append(record)

    @staticmethod
    def _materialize(record: tuple) -> AccessRecord:
        label, is_write, clock, owner, stack = record
        return AccessRecord(owner=owner, label=label, is_write=is_write,
                            clock=clock, stack=stack)

    def _owner_label(self) -> str:
        process = self.env.active_process
        if process is not None:
            # repr(Process) formats the generator's qualname — cache it
            # per pid rather than paying it on every recorded access.
            pid = self._pid(process)
            label = self._owner_labels.get(pid)
            if label is None:
                label = self._owner_labels[pid] = repr(process)
            return label
        return "<callback phase>"

    def _stack(self) -> str:
        # Capture only the frames that can survive the trim below (the
        # detector's own tail frames plus the reported depth) — walking
        # and summarizing the whole stack per access dominates otherwise.
        frames = traceback.extract_stack(limit=self.stack_depth + 4)
        # Drop this module's own frames from the tail.
        while frames and frames[-1].filename == __file__:
            frames.pop()
        tail = frames[-self.stack_depth:]
        return "".join(traceback.format_list(tail)).rstrip()


@contextmanager
def detect_races(env: "Environment", watch: Iterable = (),
                 include_stacks: bool = True):
    """Run a DES block under the happens-before race detector.

    ``watch`` is an iterable of stats accumulators to instrument on top
    of the always-on ``Resource``/``Store`` access hooks.  The detector
    does not raise by itself; inspect ``detector.races`` or call
    ``detector.assert_clean()`` after the block.
    """
    detector = RaceDetector(env, include_stacks=include_stacks)
    for obj in watch:
        detector.watch(obj)
    detector.install()
    try:
        yield detector
    finally:
        detector.uninstall()

"""Static interleaving lints: ``yield`` as a preemption point.

In a generator-process DES, every ``yield`` hands control back to the
calendar — any other process may run before the generator resumes.  The
two rules here flag the interleaving hazards that survive the
determinism lints in :mod:`repro.check.rules`:

* :class:`YieldRmwRule` — a shared attribute read into a local before a
  yield and written back after it.  Whatever ran during the yield may
  have updated the attribute; the write-back silently discards that
  update (the classic lost-update race).  Holding a
  ``Resource.request()`` across both ends serializes the section and
  suppresses the finding.
* :class:`LockOrderRule` — ``Resource.request()`` holds nested in
  opposite orders in different process functions.  Two processes
  entering the nests concurrently can each hold one resource while
  waiting forever on the other's.

Both rules are syntactic: lock identity is the dotted expression text
before ``.request`` (``disk.resource``, ``self.cpu``), and the RMW rule
tracks straight-line read→yield→write sequences, not data flow through
calls.  ``# repro: allow[yield-rmw]`` / ``# repro: allow[lock-order]``
suppress individual findings, as for every other rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from .findings import Finding
from .lint import Rule

__all__ = ["RACE_RULES", "race_rule_registry", "YieldRmwRule",
           "LockOrderRule"]


def _chain_text(node: ast.expr) -> Optional[str]:
    """Dotted text of a Name/Attribute chain (``a.b.c``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _request_lock_name(item: ast.withitem) -> Optional[str]:
    """The lock identity of a ``with <lock>.request(...)`` item, or None."""
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return None
    chain = _chain_text(expr.func)
    if chain is None or not chain.endswith(".request"):
        return None
    return chain[: -len(".request")]


def _function_nodes(tree: ast.Module):
    """Every function definition in the module (including methods)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class _RmwCollector:
    """Orders one function body's reads, writes and yields.

    Walks statements in source order (never descending into nested
    function definitions), assigning each a monotonically increasing
    position.  Records, with the set of enclosing ``with *.request()``
    guard regions active at that point:

    * local bindings whose right-hand side reads an attribute chain,
    * attribute-chain writes and the local names their values mention,
    * positions that contain a yield.
    """

    def __init__(self):
        self.position = 0
        #: local name -> (chain, position, node, guards)
        self.bindings: dict[str, tuple] = {}
        #: (chain, position, node, value_names, guards)
        self.writes: list[tuple] = []
        #: positions of statements containing a yield
        self.yields: list[int] = []
        self._guards: list[int] = []
        self._next_guard = 0

    def collect(self, function: ast.AST) -> None:
        for statement in function.body:
            self._statement(statement)

    # -- walking --------------------------------------------------------------

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested definitions are separate preemption scopes
        self.position += 1
        position = self.position
        if self._contains_yield(node):
            self.yields.append(position)
        if isinstance(node, ast.Assign):
            self._record_assign(node, position)
        elif isinstance(node, ast.AugAssign):
            # `obj.attr += x` re-reads the attribute at write time inside
            # one uninterruptible statement, so it is not a stale write.
            pass
        if isinstance(node, (ast.With, ast.AsyncWith)):
            guards = [name for item in node.items
                      if (name := _request_lock_name(item)) is not None]
            if guards:
                self._next_guard += 1
                self._guards.append(self._next_guard)
                for child in node.body:
                    self._statement(child)
                self._guards.pop()
            else:
                for child in node.body:
                    self._statement(child)
            return
        for child_block in ("body", "orelse", "finalbody"):
            for child in getattr(node, child_block, ()):
                if isinstance(child, ast.stmt):
                    self._statement(child)
        for handler in getattr(node, "handlers", ()):
            for child in handler.body:
                self._statement(child)

    def _record_assign(self, node: ast.Assign, position: int) -> None:
        guards = frozenset(self._guards)
        # Writes: any target that is an attribute chain.
        for target in node.targets:
            chain = _chain_text(target)
            if chain is not None and "." in chain:
                names = {name.id for name in ast.walk(node.value)
                         if isinstance(name, ast.Name)}
                self.writes.append((chain, position, node, names, guards))
        # Bindings: a simple local assigned from an expression that reads
        # an attribute chain.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            local = node.targets[0].id
            for sub in ast.walk(node.value):
                chain = _chain_text(sub) if isinstance(
                    sub, ast.Attribute) else None
                if chain is not None and "." in chain:
                    self.bindings[local] = (chain, position, node, guards)
                    break

    @classmethod
    def _contains_yield(cls, node: ast.AST) -> bool:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # a nested definition is its own preemption scope
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                return True
            if cls._contains_yield(child):
                return True
        return False


class YieldRmwRule(Rule):
    """No read-modify-write of shared attributes across a yield.

    ``x = obj.attr`` … ``yield`` … ``obj.attr = f(x)`` loses every update
    made to ``obj.attr`` by whatever process ran during the yield.  Either
    fold the update into one uninterruptible statement, or hold a
    ``Resource.request()`` across the whole section.
    """

    rule_id = "yield-rmw"
    summary = "read-modify-write of a shared attribute spans a yield"

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for function in _function_nodes(tree):
            collector = _RmwCollector()
            collector.collect(function)
            if not collector.yields:
                continue
            for chain, w_pos, w_node, names, w_guards in collector.writes:
                for local in names:
                    binding = collector.bindings.get(local)
                    if binding is None:
                        continue
                    b_chain, b_pos, b_node, b_guards = binding
                    if b_chain != chain or b_pos >= w_pos:
                        continue
                    if not any(b_pos < y < w_pos
                               for y in collector.yields):
                        continue
                    if w_guards & b_guards:
                        continue  # one request() hold spans both ends
                    yield self.finding(
                        path, w_node,
                        f"`{chain}` read into `{local}` on line "
                        f"{b_node.lineno} is stale here: a yield between "
                        "the read and this write lets other processes "
                        f"update `{chain}`, and the write-back discards "
                        "their update; hold a Resource.request() across "
                        "the section or collapse it into one statement")
                    break


class LockOrderRule(Rule):
    """Consistent ``Resource.request()`` nesting order module-wide.

    Extracts the acquired-while-holding graph from every syntactic
    ``with a.request(): … with b.request(): …`` nest in the module and
    reports each cycle: two processes entering opposite-order nests at
    once deadlock with each holding what the other awaits.  Lock identity
    is the expression text before ``.request``, so aliases of one
    resource under different names are not unified.
    """

    rule_id = "lock-order"
    summary = "Resource.request() nesting order forms a cycle (deadlock risk)"

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        edges: dict[tuple[str, str], ast.AST] = {}
        for function in _function_nodes(tree):
            self._collect_edges(function, [], edges)
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
        for cycle in self._cycles(graph):
            locations = []
            for index, held in enumerate(cycle):
                acquired = cycle[(index + 1) % len(cycle)]
                node = edges[(held, acquired)]
                locations.append(
                    f"`{acquired}` requested while holding `{held}` "
                    f"(line {node.lineno})")
            first_edge = edges[(cycle[0], cycle[1 % len(cycle)])]
            ordering = " -> ".join(cycle + [cycle[0]])
            yield self.finding(
                path, first_edge,
                f"lock-order cycle {ordering}: " + "; ".join(locations) +
                "; concurrent processes entering these nests in opposite "
                "order deadlock")

    def _collect_edges(self, node: ast.AST, held: list[str],
                       edges: dict) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = [name for item in node.items
                        if (name := _request_lock_name(item)) is not None]
            for name in acquired:
                for holder in held:
                    if holder != name:
                        edges.setdefault((holder, name), node)
            held = held + acquired
            for child in node.body:
                self._collect_edges(child, held, edges)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            self._collect_edges(child, held, edges)

    @staticmethod
    def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
        """Every distinct elementary cycle, each reported once."""
        seen: set[frozenset] = set()
        found: list[list[str]] = []
        for start in sorted(graph):
            stack = [(start, [start])]
            while stack:
                node, trail = stack.pop()
                for successor in sorted(graph.get(node, ())):
                    if successor == start:
                        members = frozenset(trail)
                        if members not in seen:
                            seen.add(members)
                            found.append(list(trail))
                    elif successor not in trail:
                        stack.append((successor, trail + [successor]))
        return found


#: Race rule classes in reporting order (the `repro check --races` pass).
RACE_RULES = (YieldRmwRule, LockOrderRule)


def race_rule_registry() -> dict[str, type[Rule]]:
    """Race rule id -> rule class, for --rules selection and the docs."""
    return {rule.rule_id: rule for rule in RACE_RULES}

"""Declarative spec of the Swift transfer protocol (docs/PROTOCOL.md).

Three views of the same protocol:

* :data:`EXCHANGES` — the request/reply vocabulary: which message class
  the client sends, what the agent may answer, on which port, and whether
  the client's wait must be timeout-guarded (every wait over the lossy
  datagram transport must be).
* :data:`CLIENT_MACHINES` — the client-side state machines for the read,
  write (ACK/NAK/retransmit) and control-port paths, as (state, event,
  state) transitions.  Events are ``send <Msg>``, ``recv <Msg>``,
  ``timeout`` or ``internal`` (a silent step).
* :data:`AGENT_MACHINES` — the agent-side machines: the read server, the
  write server (packet collection, the stall watchdog, the status-query
  re-ACK), the control-port server for the namespace operations, and the
  per-file session server that handles CLOSE.

:data:`MACHINES` is the union.  Every machine declares which ``side`` of
the wire it models, which states are ``transient`` (the side holds the
floor and must act before consuming further input — e.g. an agent that
has just received the final packet and owes an ACK), and which messages
it may silently ``ignore`` in states without a matching edge (each one
justified by a concrete filter in the implementation: request_id/op_id/
seq predicates, the unknown-op guard, closed ports).

:mod:`repro.check.protocol` verifies the implementation against the
exchanges and the machines against themselves (reachability, no trap
states, timeout edges wherever a *reply* is awaited — servers may wait
for requests forever).  :mod:`repro.check.model` composes a client
machine with its agent peer and model-checks the pair under an
adversarial network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Exchange", "Transition", "StateMachine", "EXCHANGES",
           "CLIENT_MACHINES", "AGENT_MACHINES", "MACHINES", "MACHINE_PAIRS",
           "spec_message_names", "reply_message_names", "machine_by_name"]


@dataclass(frozen=True)
class Exchange:
    """One request/reply pair of the protocol vocabulary."""

    request: str
    replies: tuple[str, ...]
    port: str                   # "control" or "private"
    timeout_required: bool      # client wait must be timeout-guarded
    note: str = ""


@dataclass(frozen=True)
class Transition:
    """One edge of a protocol state machine."""

    source: str
    event: str                  # "send X" | "recv X" | "timeout" | "internal"
    target: str


@dataclass(frozen=True)
class StateMachine:
    """A named machine with an initial state and terminal states.

    ``side`` is ``"client"`` or ``"agent"``.  ``transient`` states are
    reaction points: the machine entered them by consuming an input and
    must take one of its own edges (typically a send) before any further
    input is dispatched to it.  ``ignores`` lists messages the side may
    silently drop in states without a matching ``recv`` edge — each name
    here asserts the implementation filters that message (by request_id,
    op_id, seq, the unknown-op guard, or a closed port).
    """

    name: str
    initial: str
    terminals: frozenset[str]
    transitions: tuple[Transition, ...]
    side: str = "client"
    transient: frozenset[str] = field(default_factory=frozenset)
    ignores: frozenset[str] = field(default_factory=frozenset)

    @property
    def states(self) -> frozenset[str]:
        found = {self.initial} | set(self.terminals)
        for transition in self.transitions:
            found.add(transition.source)
            found.add(transition.target)
        return frozenset(found)

    @property
    def resting(self) -> frozenset[str]:
        """States where the machine may legitimately sit forever.

        Terminals plus the initial state: a server's listen state is a
        valid place to rest even though it is not "done".
        """
        return self.terminals | {self.initial}

    def edges_from(self, state: str) -> tuple[Transition, ...]:
        return tuple(t for t in self.transitions if t.source == state)

    def without_edge(self, source: str, event: str) -> "StateMachine":
        """A mutated copy missing one edge (for model-checker tests)."""
        kept = tuple(t for t in self.transitions
                     if not (t.source == source and t.event == event))
        if len(kept) == len(self.transitions):
            raise ValueError(f"{self.name} has no edge ({source}, {event})")
        return StateMachine(
            name=f"{self.name}-mutant", initial=self.initial,
            terminals=self.terminals, transitions=kept, side=self.side,
            transient=self.transient, ignores=self.ignores)


#: The protocol vocabulary, straight from docs/PROTOCOL.md.
EXCHANGES: tuple[Exchange, ...] = (
    Exchange("OpenRequest", ("OpenReply",), "control", True,
             "idempotent via request_id; retried on timeout"),
    Exchange("ReadRequest", ("DataPacket",), "private", True,
             "one outstanding per agent; resubmitted with the same seq"),
    Exchange("WriteRequest", ("WriteAck", "WriteNak"), "private", True,
             "re-send doubles as a status query"),
    Exchange("WriteData", (), "private", False,
             "streamed as fast as possible; no per-packet reply"),
    Exchange("CloseRequest", ("CloseReply",), "private", True,
             "best-effort: one short wait, no retries"),
    Exchange("RemoveRequest", ("RemoveReply",), "control", True),
    Exchange("StatRequest", ("StatReply",), "control", True),
    Exchange("ListRequest", ("ListReply",), "control", True),
)

#: §3.1 read path: single outstanding request, resubmit on loss.  Stale
#: data packets (older seq) are purged/filtered, hence ignorable.
READ_MACHINE = StateMachine(
    name="read",
    initial="IDLE",
    terminals=frozenset({"DONE"}),
    transitions=(
        Transition("IDLE", "send ReadRequest", "WAIT_DATA"),
        Transition("WAIT_DATA", "recv DataPacket", "DONE"),
        Transition("WAIT_DATA", "timeout", "IDLE"),
    ),
    side="client",
    ignores=frozenset({"DataPacket"}),
)

#: §3.1 write path: announce, stream, await ACK; NAK → retransmit; ACK
#: timeout → status query (a re-sent WRITE-REQ).  Replies for other ops
#: are filtered by op_id, hence ignorable.
WRITE_MACHINE = StateMachine(
    name="write",
    initial="IDLE",
    terminals=frozenset({"DONE"}),
    transitions=(
        Transition("IDLE", "send WriteRequest", "ANNOUNCED"),
        Transition("ANNOUNCED", "send WriteData", "STREAMING"),
        Transition("STREAMING", "send WriteData", "STREAMING"),
        Transition("STREAMING", "recv WriteAck", "DONE"),
        Transition("STREAMING", "recv WriteNak", "STREAMING"),
        Transition("STREAMING", "timeout", "QUERY"),
        Transition("QUERY", "send WriteRequest", "STREAMING"),
    ),
    side="client",
    transient=frozenset({"ANNOUNCED", "QUERY"}),
    ignores=frozenset({"WriteAck", "WriteNak"}),
)


def _client_control_machine(name: str, request: str, reply: str,
                            best_effort: bool = False) -> StateMachine:
    """A control-port client: send, await the reply, retry on timeout.

    ``best_effort`` models CLOSE: one short wait, a timeout gives up
    (DONE) instead of retrying.  Duplicate replies are filtered by
    request_id (handle for CLOSE), hence ignorable.
    """
    return StateMachine(
        name=name,
        initial="IDLE",
        terminals=frozenset({"DONE"}),
        transitions=(
            Transition("IDLE", f"send {request}", "WAIT"),
            Transition("WAIT", f"recv {reply}", "DONE"),
            Transition("WAIT", "timeout", "DONE" if best_effort else "IDLE"),
        ),
        side="client",
        ignores=frozenset({reply}),
    )


OPEN_MACHINE = _client_control_machine("open", "OpenRequest", "OpenReply")
CLOSE_MACHINE = _client_control_machine("close", "CloseRequest", "CloseReply",
                                        best_effort=True)
REMOVE_MACHINE = _client_control_machine("remove", "RemoveRequest",
                                         "RemoveReply")
STAT_MACHINE = _client_control_machine("stat", "StatRequest", "StatReply")
LIST_MACHINE = _client_control_machine("list", "ListRequest", "ListReply")

CLIENT_MACHINES: tuple[StateMachine, ...] = (
    READ_MACHINE, WRITE_MACHINE, OPEN_MACHINE, CLOSE_MACHINE,
    REMOVE_MACHINE, STAT_MACHINE, LIST_MACHINE,
)

#: Agent read server: stateless request/reply, re-serves duplicates.
READ_SERVER_MACHINE = StateMachine(
    name="read-server",
    initial="LISTEN",
    terminals=frozenset({"LISTEN"}),
    transitions=(
        Transition("LISTEN", "recv ReadRequest", "SERVING"),
        Transition("SERVING", "send DataPacket", "LISTEN"),
    ),
    side="agent",
    transient=frozenset({"SERVING"}),
)

#: Agent write server: collect announced packets; the stall watchdog
#: NAKs the missing indices; a duplicate WRITE-REQ is a status query
#: (NAK while incomplete, re-ACK once applied); late/unknown-op data is
#: dropped by the unknown-op and applied guards, hence WriteData is
#: ignorable in states without an edge (IDLE after a restart).
WRITE_SERVER_MACHINE = StateMachine(
    name="write-server",
    initial="IDLE",
    terminals=frozenset({"APPLIED"}),
    transitions=(
        Transition("IDLE", "recv WriteRequest", "COLLECT"),
        Transition("COLLECT", "recv WriteData", "DECIDE"),
        Transition("DECIDE", "internal", "COLLECT"),
        Transition("DECIDE", "send WriteAck", "APPLIED"),
        Transition("COLLECT", "timeout", "NAKKING"),
        Transition("COLLECT", "recv WriteRequest", "NAKKING"),
        Transition("NAKKING", "send WriteNak", "COLLECT"),
        Transition("APPLIED", "recv WriteRequest", "REACK"),
        Transition("REACK", "send WriteAck", "APPLIED"),
        Transition("APPLIED", "recv WriteData", "APPLIED"),
    ),
    side="agent",
    transient=frozenset({"DECIDE", "NAKKING", "REACK"}),
    ignores=frozenset({"WriteData"}),
)


def _agent_server_machine(name: str, request: str, reply: str) -> StateMachine:
    """A control-port server: serve one request, reply, listen again."""
    return StateMachine(
        name=name,
        initial="LISTEN",
        terminals=frozenset({"LISTEN"}),
        transitions=(
            Transition("LISTEN", f"recv {request}", "REPLYING"),
            Transition("REPLYING", f"send {reply}", "LISTEN"),
        ),
        side="agent",
        transient=frozenset({"REPLYING"}),
    )


OPEN_SERVER_MACHINE = _agent_server_machine("open-server", "OpenRequest",
                                            "OpenReply")
REMOVE_SERVER_MACHINE = _agent_server_machine("remove-server", "RemoveRequest",
                                              "RemoveReply")
STAT_SERVER_MACHINE = _agent_server_machine("stat-server", "StatRequest",
                                            "StatReply")
LIST_SERVER_MACHINE = _agent_server_machine("list-server", "ListRequest",
                                            "ListReply")

#: The per-file session server: CLOSE expires the handle and releases
#: the private port; a duplicate CLOSE hits a closed port and is dropped
#: by the host, hence ignorable.
SESSION_SERVER_MACHINE = StateMachine(
    name="session-server",
    initial="OPEN",
    terminals=frozenset({"CLOSED"}),
    transitions=(
        Transition("OPEN", "recv CloseRequest", "CLOSING"),
        Transition("CLOSING", "send CloseReply", "CLOSED"),
    ),
    side="agent",
    transient=frozenset({"CLOSING"}),
    ignores=frozenset({"CloseRequest"}),
)

AGENT_MACHINES: tuple[StateMachine, ...] = (
    READ_SERVER_MACHINE, WRITE_SERVER_MACHINE, OPEN_SERVER_MACHINE,
    REMOVE_SERVER_MACHINE, STAT_SERVER_MACHINE, LIST_SERVER_MACHINE,
    SESSION_SERVER_MACHINE,
)

MACHINES: tuple[StateMachine, ...] = CLIENT_MACHINES + AGENT_MACHINES

#: Which client machine talks to which agent machine (the model
#: checker composes each pair under the adversarial network).
MACHINE_PAIRS: tuple[tuple[str, str], ...] = (
    ("read", "read-server"),
    ("write", "write-server"),
    ("open", "open-server"),
    ("close", "session-server"),
    ("remove", "remove-server"),
    ("stat", "stat-server"),
    ("list", "list-server"),
)


def machine_by_name(name: str) -> StateMachine:
    """Look a machine up by its spec name."""
    for machine in MACHINES:
        if machine.name == name:
            return machine
    raise KeyError(name)


def spec_message_names() -> frozenset[str]:
    """Every message class name the spec mentions."""
    names: set[str] = set()
    for exchange in EXCHANGES:
        names.add(exchange.request)
        names.update(exchange.replies)
    for machine in MACHINES:
        for transition in machine.transitions:
            if transition.event.startswith(("send ", "recv ")):
                names.add(transition.event.split(" ", 1)[1])
    return frozenset(names)


def reply_message_names() -> frozenset[str]:
    """Message names that are replies in some exchange.

    A state waiting to ``recv`` one of these is a *reply wait* over the
    lossy transport and needs a timeout edge; waiting for a request
    (a server's listen state) may legitimately block forever.
    """
    return frozenset(name for exchange in EXCHANGES
                     for name in exchange.replies)

"""Declarative spec of the Swift transfer protocol (docs/PROTOCOL.md).

Two views of the same machine:

* :data:`EXCHANGES` — the request/reply vocabulary: which message class
  the client sends, what the agent may answer, on which port, and whether
  the client's wait must be timeout-guarded (every wait over the lossy
  datagram transport must be).
* :data:`MACHINES` — the client-side state machines for the read and
  write (ACK/NAK/retransmit) paths, as (state, event, state) transitions.
  Events are ``send <Msg>``, ``recv <Msg>`` or ``timeout``.

:mod:`repro.check.protocol` verifies the implementation against the
exchanges and the machines against themselves (reachability, no trap
states, timeout edges wherever a reply is awaited).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Exchange", "Transition", "StateMachine", "EXCHANGES", "MACHINES",
           "spec_message_names"]


@dataclass(frozen=True)
class Exchange:
    """One request/reply pair of the protocol vocabulary."""

    request: str
    replies: tuple[str, ...]
    port: str                   # "control" or "private"
    timeout_required: bool      # client wait must be timeout-guarded
    note: str = ""


@dataclass(frozen=True)
class Transition:
    """One edge of a client-side state machine."""

    source: str
    event: str                  # "send X" | "recv X" | "timeout"
    target: str


@dataclass(frozen=True)
class StateMachine:
    """A named machine with an initial state and terminal states."""

    name: str
    initial: str
    terminals: frozenset[str]
    transitions: tuple[Transition, ...]

    @property
    def states(self) -> frozenset[str]:
        found = {self.initial} | set(self.terminals)
        for transition in self.transitions:
            found.add(transition.source)
            found.add(transition.target)
        return frozenset(found)

    def edges_from(self, state: str) -> tuple[Transition, ...]:
        return tuple(t for t in self.transitions if t.source == state)


#: The protocol vocabulary, straight from docs/PROTOCOL.md.
EXCHANGES: tuple[Exchange, ...] = (
    Exchange("OpenRequest", ("OpenReply",), "control", True,
             "idempotent via request_id; retried on timeout"),
    Exchange("ReadRequest", ("DataPacket",), "private", True,
             "one outstanding per agent; resubmitted with the same seq"),
    Exchange("WriteRequest", ("WriteAck", "WriteNak"), "private", True,
             "re-send doubles as a status query"),
    Exchange("WriteData", (), "private", False,
             "streamed as fast as possible; no per-packet reply"),
    Exchange("CloseRequest", ("CloseReply",), "private", True,
             "best-effort: one short wait, no retries"),
    Exchange("RemoveRequest", ("RemoveReply",), "control", True),
    Exchange("StatRequest", ("StatReply",), "control", True),
    Exchange("ListRequest", ("ListReply",), "control", True),
)

#: §3.1 read path: single outstanding request, resubmit on loss.
READ_MACHINE = StateMachine(
    name="read",
    initial="IDLE",
    terminals=frozenset({"DONE"}),
    transitions=(
        Transition("IDLE", "send ReadRequest", "WAIT_DATA"),
        Transition("WAIT_DATA", "recv DataPacket", "DONE"),
        Transition("WAIT_DATA", "timeout", "IDLE"),
    ),
)

#: §3.1 write path: announce, stream, await ACK; NAK → retransmit; ACK
#: timeout → status query (a re-sent WRITE-REQ).
WRITE_MACHINE = StateMachine(
    name="write",
    initial="IDLE",
    terminals=frozenset({"DONE"}),
    transitions=(
        Transition("IDLE", "send WriteRequest", "ANNOUNCED"),
        Transition("ANNOUNCED", "send WriteData", "STREAMING"),
        Transition("STREAMING", "send WriteData", "STREAMING"),
        Transition("STREAMING", "recv WriteAck", "DONE"),
        Transition("STREAMING", "recv WriteNak", "STREAMING"),
        Transition("STREAMING", "timeout", "QUERY"),
        Transition("QUERY", "send WriteRequest", "STREAMING"),
    ),
)

MACHINES: tuple[StateMachine, ...] = (READ_MACHINE, WRITE_MACHINE)


def spec_message_names() -> frozenset[str]:
    """Every message class name the spec mentions."""
    names: set[str] = set()
    for exchange in EXCHANGES:
        names.add(exchange.request)
        names.update(exchange.replies)
    for machine in MACHINES:
        for transition in machine.transitions:
            if transition.event.startswith(("send ", "recv ")):
                names.add(transition.event.split(" ", 1)[1])
    return frozenset(names)

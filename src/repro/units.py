"""The blessed home of unit constants and conversions.

Swift's claims are quantity arithmetic: §4's tables mix bits/s (wire
rates) with bytes/s (file rates), §5's simulation mixes milliseconds of
seek and rotation with seconds of simulated time, and the striping layer
must conserve every byte it scatters.  Every inline ``* 8``, ``/ 1000``
or ``* 1e6`` is an opportunity to corrupt a reported rate by a factor
the reader cannot see — so this module is the single place such factors
are allowed to live.  ``repro check --units`` enforces that: raw
bit/byte factors and magic scale constants anywhere else in ``src/``
are findings (see docs/CHECKING.md).

Conventions, repo-wide:

* simulated time is **seconds** (``env.now``); device datasheet times
  arrive in ms/µs and are converted here, at the boundary;
* data sizes are **bytes**; wire signalling rates are **bits/second**
  and are converted to bytes/second before mixing with sizes;
* names carry their unit: ``_s``, ``_ms``, ``_us``, ``_bytes``,
  ``_bps``/``_bits_per_s``, ``_bytes_per_s`` (the analyzer's dimension
  inference keys off these suffixes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BITS_PER_BYTE",
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "MS_PER_S",
    "US_PER_S",
    "Quantity",
    "ms",
    "us",
    "s_to_ms",
    "kib",
    "mib",
    "kb",
    "mb",
    "kb_per_s",
    "mb_per_s",
    "to_bits",
    "to_bytes",
    "to_bytes_per_s",
    "to_bits_per_s",
    "seconds_to_send",
]

#: Bits per byte — the factor behind every Mb/s vs MB/s confusion.
BITS_PER_BYTE = 8

#: Binary size prefixes (what memories and striping units use).
KIB = 1024
MIB = 1 << 20
GIB = 1 << 30

#: Decimal size prefixes (what datasheets and wire rates use).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Sub-second time scales.
MS_PER_S = 1_000.0
US_PER_S = 1_000_000.0


# -- converters (plain floats for the hot paths) ------------------------------


def ms(value_ms: float) -> float:
    """Milliseconds -> seconds (datasheet seek/rotation times)."""
    return value_ms / MS_PER_S


def us(value_us: float) -> float:
    """Microseconds -> seconds (inter-frame gaps, slot times)."""
    return value_us / US_PER_S


def s_to_ms(value_s: float) -> float:
    """Seconds -> milliseconds (the figures plot ms on their y-axes)."""
    return value_s * MS_PER_S


def kib(value: float) -> float:
    """KiB -> bytes."""
    return value * KIB


def mib(value: float) -> float:
    """MiB -> bytes."""
    return value * MIB


def kb(value: float) -> float:
    """Decimal kilobytes -> bytes."""
    return value * KB


def mb(value: float) -> float:
    """Decimal megabytes -> bytes."""
    return value * MB


def kb_per_s(rate_kb_s: float) -> float:
    """KB/s -> bytes/second (Table 2's sequential rates)."""
    return rate_kb_s * KB


def mb_per_s(rate_mb_s: float) -> float:
    """MB/s -> bytes/second (datasheet media rates)."""
    return rate_mb_s * MB


def to_bits(nbytes: float) -> float:
    """Bytes -> bits (what actually crosses the wire)."""
    return nbytes * BITS_PER_BYTE


def to_bytes(nbits: float) -> float:
    """Bits -> bytes."""
    return nbits / BITS_PER_BYTE


def to_bytes_per_s(bits_per_s: float) -> float:
    """A wire signalling rate (bits/s) -> bytes/second."""
    return bits_per_s / BITS_PER_BYTE


def to_bits_per_s(bytes_per_s: float) -> float:
    """Bytes/second -> bits/second."""
    return bytes_per_s * BITS_PER_BYTE


def seconds_to_send(nbytes: float, bits_per_s: float) -> float:
    """Wire time for ``nbytes`` at a ``bits_per_s`` signalling rate."""
    if bits_per_s <= 0:
        raise ValueError("bits_per_s must be positive")
    return to_bits(nbytes) / bits_per_s


# -- typed quantities ---------------------------------------------------------


@dataclass(frozen=True)
class Quantity:
    """A value tagged with its unit, with dimension-checked arithmetic.

    For code that is not on a hot path (calibration tables, report
    generation, tests), a ``Quantity`` makes unit errors impossible
    instead of merely lintable: adding ``Quantity(16, "ms")`` to
    ``Quantity(1, "s")`` raises instead of silently producing 17.
    Scaling by a bare number is allowed; ``float()`` unwraps.
    """

    value: float
    unit: str

    def _require_same(self, other: "Quantity", op: str) -> None:
        if not isinstance(other, Quantity):
            raise TypeError(
                f"cannot {op} {self.unit!r} quantity and bare {other!r}; "
                "wrap the operand in a Quantity or convert explicitly")
        if other.unit != self.unit:
            raise ValueError(
                f"cannot {op} mismatched units {self.unit!r} and "
                f"{other.unit!r}; convert through repro.units first")

    def __add__(self, other: "Quantity") -> "Quantity":
        self._require_same(other, "add")
        return Quantity(self.value + other.value, self.unit)

    def __sub__(self, other: "Quantity") -> "Quantity":
        self._require_same(other, "subtract")
        return Quantity(self.value - other.value, self.unit)

    def __mul__(self, scalar: float) -> "Quantity":
        if isinstance(scalar, Quantity):
            raise TypeError("multiplying two Quantities needs an explicit "
                            "unit; use .value and a repro.units converter")
        return Quantity(self.value * scalar, self.unit)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Quantity):
            if other.unit != self.unit:
                raise ValueError(
                    f"dividing {self.unit!r} by {other.unit!r} needs an "
                    "explicit conversion through repro.units")
            return self.value / other.value  # same unit: a pure ratio
        return Quantity(self.value / other, self.unit)

    def __float__(self) -> float:
        return float(self.value)

    def __lt__(self, other: "Quantity") -> bool:
        self._require_same(other, "compare")
        return self.value < other.value

    def __le__(self, other: "Quantity") -> bool:
        self._require_same(other, "compare")
        return self.value <= other.value

    def __repr__(self) -> str:
        return f"Quantity({self.value!r}, {self.unit!r})"

"""Transfer plans: the mediator's instructions to the distribution agent.

§2: "The storage mediator then presents a distribution agent with a transfer
plan" after reserving resources; the distribution agent then moves the data
"with no further intervention by the storage mediator".

A plan is deliberately small and declarative: which agents, what striping
unit, what packet size, whether a parity agent is included.  Everything the
data path needs, nothing it doesn't.
"""

from __future__ import annotations

from dataclasses import dataclass

from .striping import StripeLayout

__all__ = ["TransferPlan"]


@dataclass(frozen=True)
class TransferPlan:
    """The instructions handed from mediator to distribution agent."""

    object_name: str
    agent_hosts: tuple[str, ...]
    striping_unit: int
    packet_size: int
    parity: bool

    def __post_init__(self):
        if not self.agent_hosts:
            raise ValueError("a plan needs at least one agent")
        if self.striping_unit < 1 or self.packet_size < 1:
            raise ValueError("striping unit and packet size must be >= 1")
        if self.parity and len(self.agent_hosts) < 3:
            raise ValueError("parity plans need at least three agents")

    @property
    def num_data_agents(self) -> int:
        """Agents that hold data units (excludes the parity agent)."""
        return len(self.agent_hosts) - 1 if self.parity else len(self.agent_hosts)

    @property
    def data_agents(self) -> tuple[str, ...]:
        """Host names of the data agents."""
        return self.agent_hosts[:self.num_data_agents]

    @property
    def parity_agent(self) -> str | None:
        """Host name of the parity agent, if redundancy is on."""
        return self.agent_hosts[-1] if self.parity else None

    def layout(self) -> StripeLayout:
        """The stripe layout this plan implies."""
        return StripeLayout(self.num_data_agents, self.striping_unit)

    def describe(self) -> str:
        """Human-readable one-liner for logs and examples."""
        redundancy = (f", parity on {self.parity_agent}"
                      if self.parity else ", no redundancy")
        return (f"{self.object_name}: {self.num_data_agents} data agents, "
                f"unit {self.striping_unit} B, packets "
                f"{self.packet_size} B{redundancy}")

"""Continuous-media sessions: the workload Swift exists for.

§1: "Multimedia applications that require this level of service include
scientific visualization, image processing, and recording and play-back of
color video" — data consumed or produced at a *fixed rate*, where late
data is worthless.  §2's client "can behave as a data producer or a data
consumer".

:class:`PlaybackSession` plays a stored object at a target data-rate
through a jitter buffer fed by a read-ahead process; every time the
consumer clock finds the buffer empty it records an *underrun* and stalls
(a visible glitch).  The prefetcher reads one chunk at a time, so for
full parallelism across the storage agents the ``chunk_size`` should be
at least the object's stripe width (unit × data agents) — chunks smaller
than one unit stream from a single agent at that agent's rate.  :class:`RecordingSession` produces data at a fixed
rate and counts how often the storage path falls behind the live source.

Both run on any deployment — functional (loopback) or timed (the
prototype testbed / a token ring), where the underrun counts become real
capacity measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..des import Store
from .client import SwiftFile

__all__ = ["PlaybackSession", "PlaybackReport", "RecordingSession",
           "RecordingReport"]


@dataclass(frozen=True)
class PlaybackReport:
    """What happened during one playback run."""

    bytes_played: int
    duration_s: float
    target_rate: float
    startup_delay_s: float
    underruns: int
    stall_time_s: float

    @property
    def achieved_rate(self) -> float:
        """Bytes/second actually delivered to the consumer."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_played / self.duration_s

    @property
    def glitch_free(self) -> bool:
        """True if the stream never starved after startup."""
        return self.underruns == 0


@dataclass(frozen=True)
class RecordingReport:
    """What happened during one recording run."""

    bytes_recorded: int
    duration_s: float
    target_rate: float
    late_chunks: int
    max_backlog_chunks: int

    @property
    def kept_up(self) -> bool:
        """True if storage always absorbed the source in time."""
        return self.late_chunks == 0


class PlaybackSession:
    """Consume a Swift object at a fixed rate through a jitter buffer."""

    def __init__(self, swift_file: SwiftFile, rate: float,
                 chunk_size: int = 65536, readahead_chunks: int = 4):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if chunk_size < 1 or readahead_chunks < 1:
            raise ValueError("chunk size and readahead must be >= 1")
        self.file = swift_file
        self.rate = rate
        self.chunk_size = chunk_size
        self.readahead_chunks = readahead_chunks

    def play_p(self, start: int = 0, length: int | None = None):
        """Process method: play [start, start+length) at the target rate.

        Returns a :class:`PlaybackReport`.
        """
        env = self.file.engine.env
        if length is None:
            length = max(0, self.file.size - start)
        total_chunks = -(-length // self.chunk_size) if length else 0
        if total_chunks == 0:
            yield env.timeout(0.0)
            return PlaybackReport(0, 0.0, self.rate, 0.0, 0, 0.0)

        buffer: Store = Store(env, capacity=self.readahead_chunks)

        def prefetcher():
            position = start
            remaining = length
            index = 0
            while remaining > 0:
                span = min(self.chunk_size, remaining)
                data = yield from self.file.pread_p(position, span)
                yield buffer.put((index, data))
                position += span
                remaining -= span
                index += 1

        began = env.now
        env.process(prefetcher())

        # Startup: wait for the first chunk (the buffer "fills").
        first = yield buffer.get()
        startup_delay = env.now - began

        chunk_time = self.chunk_size / self.rate
        underruns = 0
        stall_time = 0.0
        bytes_played = len(first[1])
        playback_started = env.now
        next_deadline = env.now
        for expected in range(1, total_chunks):
            next_deadline += chunk_time
            delay = next_deadline - env.now
            if delay > 0:
                yield env.timeout(delay)
            if buffer.size == 0:
                # The consumer clock ticked and found nothing: a glitch.
                underruns += 1
                stall_began = env.now
                index, data = yield buffer.get()
                stall_time += env.now - stall_began
                next_deadline = env.now  # resynchronise the clock
            else:
                index, data = yield buffer.get()
            if index != expected:  # pragma: no cover - ordering guard
                raise RuntimeError("jitter buffer out of order")
            bytes_played += len(data)
        # The final chunk still occupies its presentation slot.
        tail = next_deadline + chunk_time - env.now
        if tail > 0:
            yield env.timeout(tail)
        return PlaybackReport(
            bytes_played=bytes_played,
            duration_s=env.now - playback_started,
            target_rate=self.rate,
            startup_delay_s=startup_delay,
            underruns=underruns,
            stall_time_s=stall_time,
        )

    def play(self, start: int = 0, length: int | None = None
             ) -> PlaybackReport:
        """Synchronous :meth:`play_p` (drives the simulation)."""
        env = self.file.engine.env
        return env.run(until=env.process(self.play_p(start, length)))


class RecordingSession:
    """Produce data at a fixed rate into a Swift object."""

    def __init__(self, swift_file: SwiftFile, rate: float,
                 chunk_size: int = 65536, max_backlog_chunks: int = 8):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if chunk_size < 1 or max_backlog_chunks < 1:
            raise ValueError("chunk size and backlog must be >= 1")
        self.file = swift_file
        self.rate = rate
        self.chunk_size = chunk_size
        self.max_backlog_chunks = max_backlog_chunks

    def record_p(self, duration_s: float, fill: int = 0x56):
        """Process method: record for ``duration_s`` of source time.

        The live source emits a chunk every ``chunk_size/rate`` seconds;
        a writer drains the backlog into Swift.  A chunk arriving to a
        full backlog is counted *late* (a real recorder would drop it;
        we keep the data so the object stays verifiable, but the lateness
        is the capacity signal).
        """
        env = self.file.engine.env
        chunk_time = self.chunk_size / self.rate
        total_chunks = max(1, int(duration_s / chunk_time))
        backlog: Store = Store(env)
        late = 0
        max_backlog = 0
        done = env.event()

        def writer():
            written = 0
            while written < total_chunks:
                index, payload = yield backlog.get()
                yield from self.file.pwrite_p(index * self.chunk_size,
                                              payload)
                written += 1
            done.succeed()

        env.process(writer())
        began = env.now
        payload_base = bytes([fill]) * self.chunk_size
        for index in range(total_chunks):
            if backlog.size >= self.max_backlog_chunks:
                late += 1
            backlog.put((index, payload_base))
            max_backlog = max(max_backlog, backlog.size)
            yield env.timeout(chunk_time)
        yield done
        return RecordingReport(
            bytes_recorded=total_chunks * self.chunk_size,
            duration_s=env.now - began,
            target_rate=self.rate,
            late_chunks=late,
            max_backlog_chunks=max_backlog,
        )

    def record(self, duration_s: float) -> RecordingReport:
        """Synchronous :meth:`record_p`."""
        env = self.file.engine.env
        return env.run(until=env.process(self.record_p(duration_s)))

"""The storage agent: the server side of the Swift data path.

§3.1: "Each Swift storage agent waits for open requests on a well-known ip
port.  When an open request is received, a new (secondary) thread of control
is established along with a private port for further communication about
that file with the client.  This thread remains active and the
communications channel remains open until the file is closed by the client;
the primary thread always continues to await new open requests."

Agents are dumb and fast: they serve single-packet read requests as soon as
they arrive, track the expected packets of announced write operations, and
acknowledge or NAK.  All object naming uses the agent's local file system
(the prototype "used file system facilities to name and store objects which
makes the storage mediators unnecessary").
"""

from __future__ import annotations

from ..des import Environment
from ..simdisk import LocalFileSystem
from ..simnet import Address, Host
from .agent_protocol import (
    CloseReply,
    CloseRequest,
    DataPacket,
    ListReply,
    ListRequest,
    OpenReply,
    OpenRequest,
    ReadRequest,
    RemoveReply,
    RemoveRequest,
    StatReply,
    StatRequest,
    WriteAck,
    WriteData,
    WriteNak,
    WriteRequest,
    wire_size,
)

__all__ = ["StorageAgent", "AgentStats", "WELL_KNOWN_PORT"]


class AgentStats:
    """Operation counters one storage agent keeps."""

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Zero every counter (between back-to-back scenario runs)."""
        self.opens = 0
        self.reads_served = 0
        self.bytes_read = 0
        self.write_ops_completed = 0
        self.bytes_written = 0
        self.naks_sent = 0
        self.duplicate_packets = 0

#: The well-known port agents listen on for OPEN requests.
WELL_KNOWN_PORT = 2001


class _WriteState:
    """Progress of one announced write operation."""

    def __init__(self, request: WriteRequest):
        self.request = request
        self.received: dict[int, WriteData] = {}
        self.written: set[int] = set()
        self.applied = False

    @property
    def complete(self) -> bool:
        return len(self.received) >= self.request.expected_packets

    def missing(self) -> tuple[int, ...]:
        return tuple(index for index in range(self.request.expected_packets)
                     if index not in self.received)


class _FileHandler:
    """The secondary thread: one open file, one private port."""

    def __init__(self, agent: "StorageAgent", handle: int, file_name: str,
                 client: Address):
        self.agent = agent
        self.handle = handle
        self.file_name = file_name
        self.client = client
        self.socket = agent.host.bind(buffer_packets=agent.socket_buffer)
        self.write_ops: dict[int, _WriteState] = {}
        self.open = True
        self._prefetched_upto = 0
        self.process = agent.env.process(self._serve())

    @property
    def port(self) -> int:
        return self.socket.port

    # -- main loop ------------------------------------------------------------

    def _serve(self):
        env = self.agent.env
        while self.open and self.agent.alive:
            datagram = yield self.socket.recv()
            message = datagram.message
            if isinstance(message, ReadRequest):
                yield from self._serve_read(message)
            elif isinstance(message, WriteRequest):
                yield from self._serve_write_request(message)
            elif isinstance(message, WriteData):
                yield from self._serve_write_data(message)
            elif isinstance(message, CloseRequest):
                yield from self._reply(CloseReply(handle=self.handle))
                self._teardown()
            # Unknown messages are dropped, like any datagram service.

    # -- read path --------------------------------------------------------------

    def _serve_read(self, request: ReadRequest):
        fs = self.agent.filesystem
        data = yield from fs.read(self.file_name, request.offset,
                                  request.length)
        packet = DataPacket(handle=self.handle, seq=request.seq,
                            offset=request.offset, payload=bytes(data))
        self.agent.stats.reads_served += 1
        self.agent.stats.bytes_read += len(packet.payload)
        yield from self._reply(packet)
        if self.agent.prefetch:
            self._start_prefetch(
                request.offset + request.length,
                request.length * self.agent.prefetch_span)

    def _start_prefetch(self, offset: int, length: int) -> None:
        """Read ahead into the cache so the next request is a hit."""
        if length <= 0 or offset < self._prefetched_upto:
            return
        self._prefetched_upto = offset + length

        def prefetcher():
            yield from self.agent.filesystem.read(self.file_name, offset,
                                                  length)

        self.agent.env.process(prefetcher())

    # -- write path ----------------------------------------------------------------

    def _serve_write_request(self, request: WriteRequest):
        state = self.write_ops.get(request.op_id)
        if state is None:
            state = _WriteState(request)
            self.write_ops[request.op_id] = state
            if state.complete:  # zero-length write
                yield from self._finish_write(state)
            else:
                self.agent.env.process(self._write_watchdog(request.op_id))
        else:
            # Duplicate WRITE-REQ: a status query from the client.
            if state.complete:
                yield from self._reply(
                    WriteAck(handle=self.handle, op_id=request.op_id))
            else:
                yield from self._reply(WriteNak(
                    handle=self.handle, op_id=request.op_id,
                    missing=state.missing()))

    def _serve_write_data(self, packet: WriteData):
        state = self.write_ops.get(packet.op_id)
        if state is None or state.applied:
            # Late or duplicate data for a finished op: ignore (the ACK may
            # have been lost; the client's status query will resolve it).
            yield self.agent.env.timeout(0.0)
            return
        if packet.index in state.received:
            self.agent.stats.duplicate_packets += 1
        if packet.index not in state.received:
            state.received[packet.index] = packet
            if self.agent.synchronous_writes:
                # Write-through agents push each packet to disk as it
                # arrives, overlapping the disk with the network stream.
                yield from self.agent.filesystem.write(
                    self.file_name, packet.offset, packet.payload,
                    sync=True)
                state.written.add(packet.index)
        if state.complete:
            yield from self._finish_write(state)
        else:
            yield self.agent.env.timeout(0.0)

    def _finish_write(self, state: _WriteState):
        if not state.applied:
            state.applied = True
            self.agent.stats.write_ops_completed += 1
            self.agent.stats.bytes_written += state.request.length
            fs = self.agent.filesystem
            for index in sorted(state.received):
                if index in state.written:
                    continue
                packet = state.received[index]
                yield from fs.write(self.file_name, packet.offset,
                                    packet.payload,
                                    sync=self.agent.synchronous_writes)
        yield from self._reply(
            WriteAck(handle=self.handle, op_id=state.request.op_id))

    def _write_watchdog(self, op_id: int):
        """NAK the missing packets if a write *stalls*.

        Progress (any packet since the last check) resets the clock, so a
        long in-flight stream is never NAKed spuriously.
        """
        env = self.agent.env
        last_count = -1
        for _ in range(self.agent.nak_rounds):
            yield env.timeout(self.agent.nak_timeout_s)
            if not self.open or not self.agent.alive:
                return
            state = self.write_ops.get(op_id)
            if state is None or state.complete:
                return
            if len(state.received) == last_count:
                self.agent.stats.naks_sent += 1
                yield from self._reply(WriteNak(
                    handle=self.handle, op_id=op_id,
                    missing=state.missing()))
            last_count = len(state.received)

    # -- plumbing ----------------------------------------------------------------

    def _reply(self, message):
        yield self.socket.send_op(self.client, message=message,
                                  payload_size=wire_size(message))

    def _teardown(self) -> None:
        self.open = False
        self.socket.close()
        self.agent._handlers.pop(self.handle, None)


class StorageAgent:
    """One storage agent process on a host with a local file system."""

    def __init__(self, env: Environment, host: Host,
                 filesystem: LocalFileSystem,
                 well_known_port: int = WELL_KNOWN_PORT,
                 prefetch: bool = True,
                 prefetch_span: int = 4,
                 synchronous_writes: bool = False,
                 socket_buffer: int = 64,
                 nak_timeout_s: float = 0.25,
                 nak_rounds: int = 50):
        self.env = env
        self.host = host
        self.filesystem = filesystem
        if prefetch_span < 1:
            raise ValueError("prefetch_span must be >= 1")
        self.prefetch = prefetch
        #: How many request-lengths of read-ahead to cluster per prefetch
        #: (SunOS clustered its read-ahead similarly); deeper clusters
        #: keep the disk sequential when several files interleave.
        self.prefetch_span = prefetch_span
        self.synchronous_writes = synchronous_writes
        self.socket_buffer = socket_buffer
        self.nak_timeout_s = nak_timeout_s
        self.nak_rounds = nak_rounds
        self.alive = True
        self.stats = AgentStats()
        self.control = host.bind(well_known_port, buffer_packets=socket_buffer)
        self._handlers: dict[int, _FileHandler] = {}
        self._open_replies: dict[tuple[Address, int], OpenReply] = {}
        self._next_handle = 1
        self._primary_process = env.process(self._primary())

    @property
    def name(self) -> str:
        """The agent's host name (how clients address it)."""
        return self.host.name

    @property
    def open_files(self) -> int:
        """Number of active file handlers."""
        return len(self._handlers)

    # -- the primary thread --------------------------------------------------------

    def _primary(self):
        while self.alive:
            datagram = yield self.control.recv()
            message = datagram.message
            reply_to = datagram.src
            if isinstance(message, OpenRequest):
                key = (reply_to, message.request_id)
                reply = self._open_replies.get(key)
                if reply is None:
                    reply = self._do_open(message, reply_to)
                    self._open_replies[key] = reply
            elif isinstance(message, RemoveRequest):
                existed = self.filesystem.exists(message.file_name)
                if existed:
                    self.filesystem.unlink(message.file_name)
                reply = RemoveReply(request_id=message.request_id,
                                    existed=existed)
            elif isinstance(message, StatRequest):
                if self.filesystem.exists(message.file_name):
                    reply = StatReply(
                        request_id=message.request_id, exists=True,
                        local_size=self.filesystem.file_size(
                            message.file_name))
                else:
                    reply = StatReply(request_id=message.request_id,
                                      exists=False)
            elif isinstance(message, ListRequest):
                reply = ListReply(request_id=message.request_id,
                                  names=tuple(self.filesystem.list_files()))
            else:
                continue
            yield self.control.send_op(reply_to, message=reply,
                                       payload_size=wire_size(reply))

    def _do_open(self, message: OpenRequest, client: Address) -> OpenReply:
        fs = self.filesystem
        if not fs.exists(message.file_name):
            if not message.create:
                return OpenReply(request_id=message.request_id, ok=False,
                                 error=f"no such object: {message.file_name}")
            fs.create(message.file_name)
        if message.truncate and fs.file_size(message.file_name):
            fs.unlink(message.file_name)
            fs.create(message.file_name)
        handle = self._next_handle
        self._next_handle += 1
        self.stats.opens += 1
        handler = _FileHandler(self, handle, message.file_name, client)
        self._handlers[handle] = handler
        return OpenReply(
            request_id=message.request_id,
            ok=True,
            handle=handle,
            private_port=handler.port,
            local_size=fs.file_size(message.file_name),
        )

    # -- fault injection --------------------------------------------------------------

    def crash(self) -> None:
        """Stop responding entirely (a partial failure, §2).

        The control socket and every private port are closed; in-flight and
        future datagrams are dropped on the floor.  Clients see timeouts.
        """
        self.alive = False
        self.control.close()
        for handler in list(self._handlers.values()):
            handler._teardown()

    def __repr__(self) -> str:
        state = "up" if self.alive else "CRASHED"
        return f"<StorageAgent {self.name} {state} files={self.open_files}>"

"""Stripe layout arithmetic: the mapping between a Swift object's logical
byte space and the per-agent files it is interleaved across.

§3: "the library interleaves data uniformly among the set of files used to
service a request"; §2: "the storage mediator selects the striping unit (the
amount of data allocated to each storage agent per stripe)".

The layout is classic round-robin striping: logical bytes are cut into
``striping_unit``-sized units and dealt to agents ``0, 1, ..., n-1, 0, ...``.
All arithmetic here is pure (no simulation state), so it is property-tested
heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Chunk", "StripeLayout"]


@dataclass(frozen=True, slots=True)
class Chunk:
    """A maximal piece of one request that lands on a single agent.

    ``logical_offset`` is where the chunk starts in the object's byte space;
    ``agent_offset`` is where it starts inside that agent's local file.
    Slotted: chunk objects are minted per unit per request, so the
    per-instance ``__dict__`` was measurable on large transfers.
    """

    agent: int
    agent_offset: int
    logical_offset: int
    length: int
    stripe: int

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("chunk length must be positive")
        if min(self.agent, self.agent_offset, self.logical_offset,
               self.stripe) < 0:
            raise ValueError("chunk coordinates must be non-negative")

    def split(self, at: int) -> tuple["Chunk", "Chunk"]:
        """Cut into ``(head, tail)`` at ``at`` bytes from the start.

        A chunk never crosses a unit boundary, so both halves stay on the
        same agent and stripe.  Used when an agent dies mid-chunk: the
        retrieved head is accounted, the tail goes to degraded reading.
        """
        if not 0 < at < self.length:
            raise ValueError(f"split point {at} outside (0, {self.length})")
        head = Chunk(self.agent, self.agent_offset, self.logical_offset,
                     at, self.stripe)
        tail = Chunk(self.agent, self.agent_offset + at,
                     self.logical_offset + at, self.length - at, self.stripe)
        return head, tail


class StripeLayout:
    """Round-robin striping of a byte space over ``num_agents`` agents."""

    def __init__(self, num_agents: int, striping_unit: int):
        if num_agents < 1:
            raise ValueError(f"need at least one agent, got {num_agents}")
        if striping_unit < 1:
            raise ValueError(f"striping unit must be >= 1, got {striping_unit}")
        self.num_agents = num_agents
        self.striping_unit = striping_unit

    @property
    def stripe_width(self) -> int:
        """Logical bytes per full stripe (unit × agents)."""
        return self.striping_unit * self.num_agents

    # -- forward mapping -----------------------------------------------------

    def stripe_of(self, offset: int) -> int:
        """The stripe index containing logical ``offset``."""
        self._check_offset(offset)
        return offset // self.stripe_width

    def locate(self, offset: int) -> tuple[int, int]:
        """Map a logical offset to (agent, agent_offset)."""
        self._check_offset(offset)
        stripe, within = divmod(offset, self.stripe_width)
        agent, unit_offset = divmod(within, self.striping_unit)
        return agent, stripe * self.striping_unit + unit_offset

    def chunks(self, offset: int, length: int) -> Iterator[Chunk]:
        """The request [offset, offset+length) cut at unit boundaries.

        Yielded in logical order; each chunk lies within one unit on one
        agent.
        """
        self._check_offset(offset)
        if length < 0:
            raise ValueError("length must be non-negative")
        position = offset
        end = offset + length
        while position < end:
            agent, agent_offset = self.locate(position)
            room_in_unit = self.striping_unit - (agent_offset % self.striping_unit)
            span = min(room_in_unit, end - position)
            yield Chunk(
                agent=agent,
                agent_offset=agent_offset,
                logical_offset=position,
                length=span,
                stripe=position // self.stripe_width,
            )
            position += span

    def agent_segments(self, offset: int, length: int) -> dict[int, list[Chunk]]:
        """Chunks grouped per agent, each list in agent-offset order."""
        grouped: dict[int, list[Chunk]] = {}
        for chunk in self.chunks(offset, length):
            grouped.setdefault(chunk.agent, []).append(chunk)
        return grouped

    # -- inverse mapping -------------------------------------------------------

    def logical_offset(self, agent: int, agent_offset: int) -> int:
        """Map (agent, agent_offset) back to the logical offset."""
        if not 0 <= agent < self.num_agents:
            raise ValueError(f"agent {agent} out of range")
        if agent_offset < 0:
            raise ValueError("agent offset must be non-negative")
        stripe, unit_offset = divmod(agent_offset, self.striping_unit)
        return (stripe * self.stripe_width
                + agent * self.striping_unit
                + unit_offset)

    def agent_lengths(self, total_size: int) -> list[int]:
        """Local file size of each agent for an object of ``total_size``."""
        if total_size < 0:
            raise ValueError("total size must be non-negative")
        full_stripes, remainder = divmod(total_size, self.stripe_width)
        base = full_stripes * self.striping_unit
        lengths = []
        for agent in range(self.num_agents):
            extra = min(max(remainder - agent * self.striping_unit, 0),
                        self.striping_unit)
            lengths.append(base + extra)
        return lengths

    def logical_size(self, agent_sizes: list[int]) -> int:
        """Recover the object size from the agents' local file sizes.

        The object size is one past the highest logical offset stored on
        any agent.
        """
        if len(agent_sizes) != self.num_agents:
            raise ValueError(
                f"expected {self.num_agents} sizes, got {len(agent_sizes)}")
        best = 0
        for agent, size in enumerate(agent_sizes):
            if size < 0:
                raise ValueError("agent sizes must be non-negative")
            if size:
                best = max(best, self.logical_offset(agent, size - 1) + 1)
        return best

    # -- stripe geometry -----------------------------------------------------------

    def stripe_bounds(self, stripe: int) -> tuple[int, int]:
        """Logical [start, end) of a stripe."""
        if stripe < 0:
            raise ValueError("stripe must be non-negative")
        start = stripe * self.stripe_width
        return start, start + self.stripe_width

    def unit_bounds(self, stripe: int, agent: int) -> tuple[int, int]:
        """Logical [start, end) of one agent's unit within a stripe."""
        start, _ = self.stripe_bounds(stripe)
        if not 0 <= agent < self.num_agents:
            raise ValueError(f"agent {agent} out of range")
        unit_start = start + agent * self.striping_unit
        return unit_start, unit_start + self.striping_unit

    def agent_unit_offset(self, stripe: int) -> int:
        """Agent-file offset of any agent's unit for ``stripe``."""
        if stripe < 0:
            raise ValueError("stripe must be non-negative")
        return stripe * self.striping_unit

    @staticmethod
    def _check_offset(offset: int) -> None:
        if offset < 0:
            raise ValueError("offset must be non-negative")

    def __repr__(self) -> str:
        return (f"<StripeLayout agents={self.num_agents} "
                f"unit={self.striping_unit}>")

"""The client library: Swift files with Unix semantics.

§3: "Clients are provided with open, close, read, write and seek operations
that have Unix file system semantics."

Two calling styles are offered:

* **process style** (``read_p``, ``write_p``, ...) for code running inside
  the simulation (the testbed, benchmarks) — generator methods you
  ``yield from``;
* **synchronous style** (``read``, ``write``, ...) for examples and
  interactive use — each call drives the simulation until the operation
  completes.  Only valid when the caller is not itself a simulation
  process.
"""

from __future__ import annotations

import os
from typing import Optional

from ..des import Environment
from ..simnet import Host
from .distribution import DistributionAgent
from .errors import SessionClosed, SwiftError
from .mediator import StorageMediator
from .namespace import NamespaceClient
from .session import Session
from .transfer_plan import TransferPlan

__all__ = ["SwiftFile", "SwiftClient"]


class SwiftFile:
    """An open Swift object with a file position (Unix semantics)."""

    def __init__(self, engine: DistributionAgent,
                 session: Optional[Session] = None):
        self._engine = engine
        self._session = session
        self._position = 0
        self._closed = False

    # -- metadata ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """The object's name."""
        return self._engine.object_name

    @property
    def size(self) -> int:
        """Current object size in bytes."""
        return self._engine.size

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self):
        """Transfer statistics accumulated by the distribution agent."""
        return self._engine.stats

    @property
    def engine(self) -> DistributionAgent:
        """The underlying distribution agent (for failure injection etc.)."""
        return self._engine

    def tell(self) -> int:
        """Current file position."""
        return self._position

    # -- process-style operations ----------------------------------------------------

    def read_p(self, nbytes: int):
        """Process method: read up to ``nbytes`` at the current position."""
        self._require_open()
        data = yield from self._engine.read(self._position, nbytes)
        self._position += len(data)
        return data

    def write_p(self, data: bytes):
        """Process method: write ``data`` at the current position."""
        self._require_open()
        written = yield from self._engine.write(self._position, data)
        self._position += written
        return written

    def pread_p(self, offset: int, nbytes: int):
        """Process method: positional read (does not move the position)."""
        self._require_open()
        return (yield from self._engine.read(offset, nbytes))

    def pwrite_p(self, offset: int, data: bytes):
        """Process method: positional write (does not move the position)."""
        self._require_open()
        return (yield from self._engine.write(offset, data))

    def close_p(self):
        """Process method: close every channel and the session."""
        if self._closed:
            yield self._engine.env.timeout(0.0)
            return
        self._closed = True
        yield from self._engine.close()
        if self._session is not None:
            self._session.close()

    # -- seek is pure bookkeeping -------------------------------------------------------

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        """Move the file position; returns the new position."""
        self._require_open()
        if whence == os.SEEK_SET:
            target = offset
        elif whence == os.SEEK_CUR:
            target = self._position + offset
        elif whence == os.SEEK_END:
            target = self.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if target < 0:
            raise ValueError("cannot seek before the start of the file")
        self._position = target
        return target

    # -- synchronous facade ---------------------------------------------------------------

    def read(self, nbytes: int) -> bytes:
        """Read up to ``nbytes``, driving the simulation to completion."""
        return self._drive(self.read_p(nbytes))

    def write(self, data: bytes) -> int:
        """Write ``data``, driving the simulation to completion."""
        return self._drive(self.write_p(data))

    def pread(self, offset: int, nbytes: int) -> bytes:
        """Positional read, synchronous."""
        return self._drive(self.pread_p(offset, nbytes))

    def pwrite(self, offset: int, data: bytes) -> int:
        """Positional write, synchronous."""
        return self._drive(self.pwrite_p(offset, data))

    def close(self) -> None:
        """Close, synchronous."""
        self._drive(self.close_p())

    def __enter__(self) -> "SwiftFile":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self._closed:
            self.close()

    # -- plumbing ------------------------------------------------------------------------

    def _drive(self, generator):
        env = self._engine.env
        if env.active_process is not None:
            raise SwiftError(
                "synchronous SwiftFile calls cannot be used inside a "
                "simulation process; use the *_p process methods")
        return env.run(until=env.process(generator))

    def _require_open(self) -> None:
        if self._closed:
            raise SessionClosed(self.name)


class SwiftClient:
    """Entry point: opens Swift objects, negotiating with the mediator."""

    def __init__(self, env: Environment, host: Host,
                 mediator: Optional[StorageMediator] = None,
                 default_agents: Optional[list[str]] = None,
                 packet_size: int = 8192,
                 **engine_options):
        if mediator is None and not default_agents:
            raise ValueError("need a mediator or an explicit agent list")
        self.env = env
        self.host = host
        self.mediator = mediator
        self.default_agents = list(default_agents or [])
        self.packet_size = packet_size
        self.engine_options = engine_options

    # -- opening ----------------------------------------------------------------------

    def open_p(self, name: str, mode: str = "r", data_rate: float = 0.0,
               object_size: int = 0, parity: bool = False,
               striping_unit: Optional[int] = None):
        """Process method: open a Swift object.

        ``mode``: ``"r"`` (must exist), ``"w"`` (create, truncate),
        ``"rw"`` (create if missing).  ``data_rate`` and ``object_size``
        feed the mediator's admission control; with no mediator they are
        ignored and the default agent list is used.
        """
        if mode not in ("r", "w", "rw"):
            raise ValueError(f"bad mode {mode!r}")
        session = None
        if self.mediator is not None:
            session = self.mediator.negotiate(
                name, object_size, data_rate=data_rate, parity=parity,
                striping_unit=striping_unit)
            plan = session.plan
        else:
            plan = TransferPlan(
                object_name=name,
                agent_hosts=tuple(self.default_agents),
                striping_unit=striping_unit or self.packet_size,
                packet_size=self.packet_size,
                parity=parity,
            )
        engine = DistributionAgent(
            self.env, self.host,
            agent_hosts=list(plan.agent_hosts),
            object_name=plan.object_name,
            striping_unit=plan.striping_unit,
            packet_size=plan.packet_size,
            parity=plan.parity,
            **self.engine_options,
        )
        try:
            yield from engine.open(create=mode in ("w", "rw"),
                                   truncate=mode == "w")
        except SwiftError:
            if session is not None:
                session.close()
            raise
        return SwiftFile(engine, session)

    def open(self, name: str, mode: str = "r", **kwargs) -> SwiftFile:
        """Synchronous open (see :meth:`open_p`)."""
        return self._drive(self.open_p(name, mode, **kwargs))

    # -- namespace operations ------------------------------------------------------

    def _all_agents(self) -> list[str]:
        if self.mediator is not None:
            return self.mediator.agent_names
        return list(self.default_agents)

    def _namespace(self) -> NamespaceClient:
        return NamespaceClient(self.env, self.host, self._all_agents())

    def remove_p(self, name: str):
        """Process method: delete an object from every agent.

        Returns True if the object existed anywhere.
        """
        namespace = self._namespace()
        try:
            existed = yield from namespace.remove(name)
        finally:
            namespace.close()
        if self.mediator is not None:
            self.mediator.forget(name)
        return existed

    def list_objects_p(self):
        """Process method: sorted names of every stored object."""
        namespace = self._namespace()
        try:
            return (yield from namespace.list_objects())
        finally:
            namespace.close()

    def exists_p(self, name: str):
        """Process method: True if the object is stored anywhere."""
        namespace = self._namespace()
        try:
            return (yield from namespace.exists(name))
        finally:
            namespace.close()

    def remove(self, name: str) -> bool:
        """Synchronous :meth:`remove_p`."""
        return self._drive(self.remove_p(name))

    def list_objects(self) -> list:
        """Synchronous :meth:`list_objects_p`."""
        return self._drive(self.list_objects_p())

    def exists(self, name: str) -> bool:
        """Synchronous :meth:`exists_p`."""
        return self._drive(self.exists_p(name))

    def _drive(self, generator):
        if self.env.active_process is not None:
            raise SwiftError(
                "synchronous SwiftClient calls cannot be used inside a "
                "simulation process; use the *_p process methods")
        return self.env.run(until=self.env.process(generator))

"""Exception hierarchy of the Swift library."""

from __future__ import annotations

__all__ = [
    "SwiftError",
    "AdmissionError",
    "ObjectNotFound",
    "ObjectExists",
    "AgentFailure",
    "TransferError",
    "DegradedModeError",
    "SessionClosed",
]


class SwiftError(Exception):
    """Base class for every error raised by the Swift stack."""


class AdmissionError(SwiftError):
    """The storage mediator rejected a session request.

    §2: "Resource preallocation implies that storage mediators will reject
    any request with requirements it is unable to satisfy."
    """


class ObjectNotFound(SwiftError):
    """The named Swift object does not exist on the storage agents."""


class ObjectExists(SwiftError):
    """Exclusive creation of an object that already exists."""


class AgentFailure(SwiftError):
    """A storage agent stopped responding and no redundancy can mask it."""


class TransferError(SwiftError):
    """A read or write could not complete after exhausting retries."""


class DegradedModeError(SwiftError):
    """An operation is not possible with the current set of failed agents."""


class SessionClosed(SwiftError):
    """Operation on a file or session that has been closed."""

"""Sessions and reservations: Swift's preallocation bookkeeping.

§2: "a storage mediator reserves resources from all the necessary storage
agents and from the communication subsystem in a session-oriented manner
... negotiations among the client and the storage mediator will allow the
preallocation of these resources."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .transfer_plan import TransferPlan

__all__ = ["Reservation", "Session"]

_session_ids = itertools.count(1)


@dataclass(frozen=True)
class Reservation:
    """Resources pledged by a single storage agent to one session."""

    agent: str
    bandwidth: float  # bytes/second reserved on the agent
    storage_bytes: int

    def __post_init__(self):
        if self.bandwidth < 0 or self.storage_bytes < 0:
            raise ValueError("reservations must be non-negative")


class Session:
    """One client's admitted I/O session.

    The mediator creates sessions; closing one releases its reservations
    back to the mediator that issued it.
    """

    def __init__(self, plan: TransferPlan, reservations: list[Reservation],
                 data_rate: float, network_bandwidth: float,
                 mediator) -> None:
        self.session_id = next(_session_ids)
        self.plan = plan
        self.reservations = list(reservations)
        self.data_rate = data_rate
        self.network_bandwidth = network_bandwidth
        self._mediator = mediator
        self.open = True

    @property
    def total_reserved_bandwidth(self) -> float:
        """Aggregate agent bandwidth pledged to this session."""
        return sum(r.bandwidth for r in self.reservations)

    def close(self) -> None:
        """Release every reservation (idempotent)."""
        if self.open:
            self.open = False
            self._mediator.release(self)

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return (f"<Session #{self.session_id} {state} "
                f"rate={self.data_rate:.0f} B/s "
                f"agents={len(self.reservations)}>")

"""Buffered Swift files: coalescing small operations.

§7 notes Swift "can also handle small objects, such as those encountered
in normal file systems", at the price of "one round trip time for a short
network message" — per operation.  Applications that read or write a few
bytes at a time would pay that round trip *every call*.  This wrapper
gives them the classic stdio remedy:

* sequential small reads are served from a read-ahead buffer (one protocol
  round trip per ``buffer_size`` bytes instead of per call);
* small writes accumulate in a write-behind buffer and go to the agents as
  one coalesced operation on flush, seek, or when the buffer fills.

The wrapper intentionally exposes the same call styles as
:class:`~repro.core.client.SwiftFile` (synchronous and ``*_p`` process
methods).
"""

from __future__ import annotations

import os

from .client import SwiftFile
from .errors import SessionClosed, SwiftError

__all__ = ["BufferedSwiftFile"]


class BufferedSwiftFile:
    """A buffering layer over an open :class:`SwiftFile`."""

    def __init__(self, handle: SwiftFile, buffer_size: int = 65536):
        if buffer_size < 1:
            raise ValueError("buffer size must be >= 1")
        self._handle = handle
        self.buffer_size = buffer_size
        self._position = handle.tell()
        # Read buffer: bytes of [._read_start, ._read_start+len) cached.
        self._read_buffer = b""
        self._read_start = 0
        # Write buffer: pending bytes starting at ._write_start.
        self._write_buffer = bytearray()
        self._write_start = 0
        self._closed = False

    # -- metadata -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """The underlying object's name."""
        return self._handle.name

    @property
    def size(self) -> int:
        """Object size, counting still-buffered writes."""
        pending_end = self._write_start + len(self._write_buffer)
        return max(self._handle.size,
                   pending_end if self._write_buffer else 0)

    @property
    def raw(self) -> SwiftFile:
        """The unbuffered file underneath."""
        return self._handle

    def tell(self) -> int:
        """Current logical position."""
        return self._position

    # -- process-style API ------------------------------------------------------------

    def read_p(self, nbytes: int):
        """Process method: buffered read at the current position."""
        self._require_open()
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        yield from self.flush_p()  # reads must observe buffered writes
        result = bytearray()
        while len(result) < nbytes:
            chunk = self._from_read_buffer(nbytes - len(result))
            if chunk:
                result.extend(chunk)
                continue
            fetched = yield from self._fill_read_buffer()
            if not fetched:
                break
        self._position += 0  # position already advanced per chunk
        return bytes(result)

    def _from_read_buffer(self, limit: int) -> bytes:
        offset = self._position - self._read_start
        if 0 <= offset < len(self._read_buffer):
            chunk = self._read_buffer[offset:offset + limit]
            self._position += len(chunk)
            return chunk
        return b""

    def _fill_read_buffer(self):
        data = yield from self._handle.pread_p(self._position,
                                               self.buffer_size)
        self._read_start = self._position
        self._read_buffer = data
        return len(data)

    def write_p(self, data: bytes):
        """Process method: buffered write at the current position."""
        self._require_open()
        if not isinstance(data, bytes):
            # Snapshot once: the flush below may suspend, and the caller
            # could mutate a bytearray/memoryview argument meanwhile.
            data = bytes(data)
        if not data:
            return 0
        appended = (self._write_buffer and
                    self._position == self._write_start
                    + len(self._write_buffer))
        if not self._write_buffer:
            self._write_start = self._position
            self._write_buffer.extend(data)
        elif appended:
            self._write_buffer.extend(data)
        else:
            # Non-contiguous write: flush what we have, start fresh.
            yield from self.flush_p()
            self._write_start = self._position
            self._write_buffer.extend(data)
        env = self._handle.engine.env
        if env._alias_monitors:
            # Views borrowed from the write buffer before this call are
            # now looking at moved bytes; let the aliasing sanitizer
            # advance the buffer's generation stamp.
            env._notify_alias("buffer-mutate", self._write_buffer)
        self._position += len(data)
        self._invalidate_read_overlap()
        if len(self._write_buffer) >= self.buffer_size:
            yield from self.flush_p()
        return len(data)

    def flush_p(self):
        """Process method: push buffered writes to the agents."""
        self._require_open()
        if self._write_buffer:
            # Hand the accumulated buffer off wholesale instead of copying
            # it: the write path snapshots non-bytes input exactly once,
            # so swapping in a fresh bytearray halves the copies per flush.
            payload = self._write_buffer
            start = self._write_start
            self._write_buffer = bytearray()
            env = self._handle.engine.env
            if env._alias_monitors:
                # The buffer leaves this file's ownership at the swap:
                # any view of it still held by a caller is now stale.
                env._notify_alias("buffer-retire", payload)
            yield from self._handle.pwrite_p(start, payload)
        else:
            yield self._handle.engine.env.timeout(0.0)

    def close_p(self):
        """Process method: flush, then close the underlying file."""
        if self._closed:
            yield self._handle.engine.env.timeout(0.0)
            return
        yield from self.flush_p()
        self._closed = True
        yield from self._handle.close_p()

    # -- seek ---------------------------------------------------------------------------

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        """Move the position (buffered writes survive; reads re-fetch)."""
        self._require_open()
        if whence == os.SEEK_SET:
            target = offset
        elif whence == os.SEEK_CUR:
            target = self._position + offset
        elif whence == os.SEEK_END:
            target = self.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if target < 0:
            raise ValueError("cannot seek before the start of the file")
        self._position = target
        return target

    # -- synchronous facade ----------------------------------------------------------------

    def read(self, nbytes: int) -> bytes:
        """Synchronous buffered read."""
        return self._drive(self.read_p(nbytes))

    def write(self, data: bytes) -> int:
        """Synchronous buffered write."""
        return self._drive(self.write_p(data))

    def flush(self) -> None:
        """Synchronous flush."""
        self._drive(self.flush_p())

    def close(self) -> None:
        """Synchronous close (flushes first)."""
        self._drive(self.close_p())

    def __enter__(self) -> "BufferedSwiftFile":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self._closed:
            self.close()

    # -- plumbing ------------------------------------------------------------------------

    def _invalidate_read_overlap(self) -> None:
        """Drop the read buffer if buffered writes may shadow it."""
        if not self._read_buffer:
            return
        write_end = self._write_start + len(self._write_buffer)
        read_end = self._read_start + len(self._read_buffer)
        if self._write_start < read_end and write_end > self._read_start:
            self._read_buffer = b""

    def _drive(self, generator):
        env = self._handle.engine.env
        if env.active_process is not None:
            raise SwiftError(
                "synchronous BufferedSwiftFile calls cannot be used inside "
                "a simulation process; use the *_p process methods")
        return env.run(until=env.process(generator))

    def _require_open(self) -> None:
        if self._closed:
            raise SessionClosed(self.name)

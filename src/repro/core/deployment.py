"""Deployment builders: wire a complete Swift system in one call.

:func:`build_local_swift` creates an "instant" deployment — a loopback
interconnect with negligible latency and zero host CPU cost — intended for
functional use of the library (examples, correctness tests): real bytes
flow through the real protocol, striping and parity code, but simulated
time is essentially free.

The *timed* deployments used for performance measurement live in
:mod:`repro.prototype.testbed` (the Ethernet lab of §3-§4) and
:mod:`repro.sim.model` (the token-ring study of §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..des import Environment, StreamFactory
from ..simdisk import Disk, DiskSpec, LocalFileSystem
from ..simnet import Medium, Network
from .client import SwiftClient
from .mediator import StorageMediator
from .storage_agent import StorageAgent

__all__ = ["SwiftDeployment", "LoopbackMedium", "build_local_swift"]

#: An effectively-free disk for functional deployments.
INSTANT_DISK = DiskSpec(
    name="instant",
    avg_seek_s=0.0,
    avg_rotation_s=0.0,
    transfer_rate_bytes_per_s=1e15,
    capacity_bytes=1 << 40,
)


class LoopbackMedium(Medium):
    """A near-instant interconnect for functional (untimed) deployments."""

    #: One nanosecond per transmission keeps event ordering sane without
    #: contributing measurable simulated time.
    LATENCY_S = 1e-9

    def transmission_time(self, size: int) -> float:
        if size <= 0:
            raise ValueError("size must be positive")
        return self.LATENCY_S

    def nominal_capacity(self) -> float:
        return float("inf")


@dataclass
class SwiftDeployment:
    """A wired-up Swift system: environment, network, agents, mediator."""

    env: Environment
    network: Network
    mediator: StorageMediator
    agents: dict[str, StorageAgent]
    client_host_name: str
    packet_size: int
    # Required (no default): a deployment's variate streams must be the
    # same factory its network was built with, threaded from one master
    # seed — an implicit seed-0 fallback here silently decorrelated the
    # two and made repeated-sample experiments non-independent.
    streams: StreamFactory

    def client(self, **engine_options) -> SwiftClient:
        """A client wired to this deployment's mediator."""
        return SwiftClient(
            self.env,
            self.network.host(self.client_host_name),
            mediator=self.mediator,
            packet_size=self.packet_size,
            **engine_options,
        )

    def direct_client(self, agent_names: list[str] | None = None,
                      **engine_options) -> SwiftClient:
        """A client that bypasses the mediator (the prototype style)."""
        return SwiftClient(
            self.env,
            self.network.host(self.client_host_name),
            default_agents=agent_names or sorted(self.agents),
            packet_size=self.packet_size,
            **engine_options,
        )

    def agent(self, name: str) -> StorageAgent:
        """Look up a storage agent by host name."""
        return self.agents[name]

    def crash_agent(self, name: str) -> None:
        """Fault injection: the named agent stops responding."""
        self.agents[name].crash()

    def replace_agent(self, name: str) -> StorageAgent:
        """Bring up a fresh agent (empty file system) on the same host name.

        Models repairing a failed server: same address, blank disk.  The
        client then uses :meth:`DistributionAgent.rebuild_agent` to refill
        it from redundancy.
        """
        old = self.agents[name]
        if old.alive:
            raise ValueError(f"agent {name} is still alive; crash it first")
        host = self.network.host(name)
        fs = LocalFileSystem(self.env, Disk(self.env, INSTANT_DISK),
                             cache_blocks=1 << 16)
        agent = StorageAgent(self.env, host, fs,
                             well_known_port=old.control.port)
        self.agents[name] = agent
        return agent


def build_local_swift(num_agents: int = 3,
                      parity: bool = False,
                      packet_size: int = 8192,
                      agent_bandwidth: float = 10e6,
                      agent_capacity: int = 1 << 32,
                      seed: int = 0) -> SwiftDeployment:
    """Build a functional Swift deployment on a loopback interconnect.

    ``num_agents`` counts *all* agents; with ``parity=True`` one of them
    will be used as the parity agent by sessions that request redundancy.
    """
    if num_agents < 1:
        raise ValueError("need at least one agent")
    if parity and num_agents < 3:
        raise ValueError("parity needs at least 3 agents")
    env = Environment()
    streams = StreamFactory(seed)
    network = Network(env, streams)
    medium = LoopbackMedium(env, "loopback")
    network.media["loopback"] = medium

    client_host = network.add_host("client")
    client_host.attach(medium, tx_queue_packets=4096)

    mediator = StorageMediator(packet_size=packet_size)
    agents: dict[str, StorageAgent] = {}
    for index in range(num_agents):
        name = f"agent{index}"
        host = network.add_host(name)
        host.attach(medium, tx_queue_packets=4096)
        fs = LocalFileSystem(env, Disk(env, INSTANT_DISK),
                             cache_blocks=1 << 16)
        agents[name] = StorageAgent(env, host, fs, socket_buffer=4096)
        mediator.register_agent(name, bandwidth=agent_bandwidth,
                                capacity_bytes=agent_capacity)

    return SwiftDeployment(
        env=env,
        network=network,
        mediator=mediator,
        agents=agents,
        client_host_name="client",
        packet_size=packet_size,
        streams=streams,
    )

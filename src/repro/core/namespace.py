"""Namespace operations: object directory across the storage agents.

The prototype "used file system facilities to name and store objects which
makes the storage mediators unnecessary" (§3) — so the object namespace
*is* the union of the agents' local directories.  This module is the
client side of that: remove, stat and list implemented over the agents'
control ports, with the same retry discipline as the data path.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..des import Environment
from ..simnet import Address, Host
from .agent_protocol import (
    ListReply,
    ListRequest,
    RemoveReply,
    RemoveRequest,
    StatReply,
    StatRequest,
    wire_size,
)
from .errors import AgentFailure
from .storage_agent import WELL_KNOWN_PORT

__all__ = ["NamespaceClient"]

_request_ids = itertools.count(1_000_000)


class NamespaceClient:
    """Directory operations against a set of storage agents."""

    def __init__(self, env: Environment, client_host: Host,
                 agent_hosts: list[str],
                 timeout_s: float = 0.5, max_retries: int = 8,
                 well_known_port: int = WELL_KNOWN_PORT):
        if not agent_hosts:
            raise ValueError("need at least one storage agent")
        self.env = env
        self.client_host = client_host
        self.agent_hosts = list(agent_hosts)
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.well_known_port = well_known_port
        self.socket = client_host.bind(buffer_packets=32)

    # -- raw RPC -----------------------------------------------------------------

    def _call(self, agent_host: str, message, reply_type):
        """Process method: request/response with retries on the control
        port; raises AgentFailure if the agent never answers."""
        address = Address(agent_host, self.well_known_port)
        for _ in range(self.max_retries):
            yield from self.socket.send(address, message=message,
                                        payload_size=wire_size(message))
            datagram = yield from self.socket.recv_wait(
                self.timeout_s,
                predicate=lambda d: isinstance(d.message, reply_type)
                and d.message.request_id == message.request_id)
            if datagram is not None:
                return datagram.message
        raise AgentFailure(
            f"agent {agent_host} did not answer a namespace request")

    # -- operations ----------------------------------------------------------------

    def remove(self, name: str):
        """Process method: unlink the object on every agent.

        Returns True if any agent held it (idempotent otherwise).
        """
        existed = False
        for agent_host in self.agent_hosts:
            reply: RemoveReply = yield from self._call(
                agent_host,
                RemoveRequest(file_name=name, request_id=next(_request_ids)),
                RemoveReply)
            existed = existed or reply.existed
        return existed

    def stat_sizes(self, name: str):
        """Process method: the object's local size on each agent.

        Returns a list aligned with ``agent_hosts``; ``None`` where the
        agent has no such file.
        """
        sizes: list[Optional[int]] = []
        for agent_host in self.agent_hosts:
            reply: StatReply = yield from self._call(
                agent_host,
                StatRequest(file_name=name, request_id=next(_request_ids)),
                StatReply)
            sizes.append(reply.local_size if reply.exists else None)
        return sizes

    def exists(self, name: str):
        """Process method: True if any agent holds a piece of the object."""
        sizes = yield from self.stat_sizes(name)
        return any(size is not None for size in sizes)

    def list_objects(self):
        """Process method: the union of all agents' object names, sorted."""
        names: set[str] = set()
        for agent_host in self.agent_hosts:
            reply: ListReply = yield from self._call(
                agent_host,
                ListRequest(request_id=next(_request_ids)),
                ListReply)
            names.update(reply.names)
        return sorted(names)

    def close(self) -> None:
        """Release the client-side socket."""
        self.socket.close()

"""The distribution agent: the client side of the Swift data path.

§2: "To transmit the object to or from the client, the distribution agent
stores or retrieves the data at the storage agents following the transfer
plan with no further intervention by the storage mediator."  In the
prototype "the Swift distribution agent is embedded in the libraries and is
represented by the client" — this module is that library.

Protocol behaviour follows §3.1 precisely:

* **read** — one outstanding packet request per storage agent (the SunOS
  buffer-space workaround); no acknowledgements: the client tracks what it
  has received and resubmits requests on timeout;
* **write** — the client streams the data packets "as fast as it can"
  (optionally separated by the small wait loop the prototype needed) and
  requires an explicit ACK from each agent, retransmitting whatever a NAK
  lists as missing.

Redundancy (computed copy, §2) keeps one XOR parity unit per stripe on a
dedicated parity agent.  Reads reconstruct around a single failed agent;
writes keep parity consistent by building full stripe images (pre-reading
old data for partially-written stripes) and continue to work with one data
agent down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..des import CallbackProcess, Environment
from ..simnet import Address, DatagramSocket, Host
from .agent_protocol import (
    CloseReply,
    CloseRequest,
    DataPacket,
    OpenReply,
    OpenRequest,
    ReadRequest,
    WriteAck,
    WriteData,
    WriteNak,
    WriteRequest,
    wire_size,
)
from .errors import AgentFailure, ObjectNotFound, SessionClosed, TransferError
from .parity import compute_parity, reconstruct_unit
from .storage_agent import WELL_KNOWN_PORT
from .striping import StripeLayout

__all__ = ["DistributionAgent", "TransferStats"]

_request_ids = itertools.count(1)


def _frozen(data) -> "bytes | memoryview":
    """An immutable alias of ``data``, copying only when it must.

    Packet payloads are zero-copy views into the write buffer and stay
    referenced across simulation time, so the backing must not change
    under them.  ``bytes`` and other readonly buffers pass through as a
    readonly view without copying; writable inputs (bytearray, writable
    memoryview) are snapshotted exactly once.
    """
    if isinstance(data, bytes):
        return data
    view = memoryview(data)
    return view if view.readonly else view.tobytes()


@dataclass
class TransferStats:
    """Counters a distribution agent keeps about its traffic."""

    packets_sent: int = 0
    packets_received: int = 0
    read_retransmits: int = 0
    write_retransmits: int = 0
    naks_received: int = 0
    ack_timeouts: int = 0
    reconstructed_units: int = 0


class _Channel:
    """Client-side state for one storage agent of one open file."""

    def __init__(self, env: Environment, client_host: Host, agent_host: str,
                 index: int):
        self.env = env
        self.agent_host = agent_host
        self.index = index
        self.socket: DatagramSocket = client_host.bind(buffer_packets=16)
        self.control_address = Address(agent_host, WELL_KNOWN_PORT)
        self.data_address: Optional[Address] = None
        self.handle = -1
        self.local_size = 0
        self.failed = False
        self._seq = itertools.count(1)
        self._op = itertools.count(1)

    def next_seq(self) -> int:
        return next(self._seq)

    def next_op(self) -> int:
        return next(self._op)

    def close(self) -> None:
        self.socket.close()


class DistributionAgent:
    """Moves one Swift object's bytes between the client and its agents.

    ``agent_hosts`` lists the storage agents; with ``parity=True`` the last
    one is the dedicated parity agent and the others hold data.
    """

    def __init__(
        self,
        env: Environment,
        client_host: Host,
        agent_hosts: list[str],
        object_name: str,
        striping_unit: int = 8192,
        packet_size: int = 8192,
        parity: bool = False,
        open_timeout_s: float = 0.5,
        read_timeout_s: float = 0.5,
        ack_timeout_s: float = 0.5,
        max_retries: int = 8,
        interpacket_gap_s: float = 0.0,
    ):
        if not agent_hosts:
            raise ValueError("need at least one storage agent")
        if parity and len(agent_hosts) < 3:
            raise ValueError("parity needs at least two data agents plus one "
                             "parity agent")
        if packet_size < 1 or striping_unit < 1:
            raise ValueError("packet size and striping unit must be >= 1")
        self.env = env
        self.client_host = client_host
        self.object_name = object_name
        self.parity = parity
        self.packet_size = packet_size
        self.open_timeout_s = open_timeout_s
        self.read_timeout_s = read_timeout_s
        self.ack_timeout_s = ack_timeout_s
        self.max_retries = max_retries
        self.interpacket_gap_s = interpacket_gap_s
        self.stats = TransferStats()

        num_data = len(agent_hosts) - 1 if parity else len(agent_hosts)
        self.layout = StripeLayout(num_data, striping_unit)
        self.channels = [
            _Channel(env, client_host, name, index)
            for index, name in enumerate(agent_hosts)
        ]
        self._size = 0
        self._opened = False
        self._closed = False
        self._transfer_ops = itertools.count(1)

    # -- conservation-ledger emitters ------------------------------------------------

    def _new_op(self, direction: str) -> Optional[str]:
        """A transfer id (``name#w3`` / ``name#r1``) when a ledger listens.

        Emitting is gated on an attached transfer monitor, so the data
        path pays one falsy test per call in normal runs.
        """
        if not self.env._transfer_monitors:
            return None
        return f"{self.object_name}#{direction}{next(self._transfer_ops)}"

    def _emit(self, op: Optional[str], kind: str, **info) -> None:
        if op is not None:
            self.env._notify_transfer(kind, op=op, **info)

    # -- properties ---------------------------------------------------------------

    @property
    def data_channels(self) -> list[_Channel]:
        """Channels that carry data units."""
        return self.channels[:self.layout.num_agents]

    @property
    def parity_channel(self) -> Optional[_Channel]:
        """The parity channel, if redundancy is on."""
        return self.channels[-1] if self.parity else None

    @property
    def size(self) -> int:
        """Logical object size in bytes."""
        return self._size

    @property
    def failed_agents(self) -> list[int]:
        """Indices of channels currently marked failed."""
        return [ch.index for ch in self.channels if ch.failed]

    def mark_failed(self, index: int) -> None:
        """Administratively declare an agent failed (e.g. known outage)."""
        self.channels[index].failed = True

    # -- session lifecycle -----------------------------------------------------------

    def open(self, create: bool = False, truncate: bool = False):
        """Process method: open the object on every agent."""
        if self._closed:
            raise SessionClosed(self.object_name)
        for channel in self.channels:
            yield from self._open_channel(channel, create, truncate)
        data_sizes = [ch.local_size for ch in self.data_channels]
        self._size = self.layout.logical_size(data_sizes)
        self._opened = True
        return self._size

    def _open_channel(self, channel: _Channel, create: bool, truncate: bool):
        request = OpenRequest(
            file_name=self.object_name, create=create, truncate=truncate,
            request_id=next(_request_ids),
        )
        for _ in range(self.max_retries):
            yield channel.socket.send_op(
                channel.control_address, message=request,
                payload_size=wire_size(request))
            self.stats.packets_sent += 1
            datagram = yield from channel.socket.recv_wait(
                self.open_timeout_s,
                predicate=lambda d: isinstance(d.message, OpenReply)
                and d.message.request_id == request.request_id)
            if datagram is None:
                continue
            reply: OpenReply = datagram.message
            self.stats.packets_received += 1
            if not reply.ok:
                raise ObjectNotFound(reply.error)
            channel.handle = reply.handle
            channel.data_address = Address(channel.agent_host,
                                           reply.private_port)
            channel.local_size = reply.local_size
            return
        raise AgentFailure(
            f"agent {channel.agent_host} did not answer OPEN")

    def close(self):
        """Process method: close every channel and release ports."""
        if self._closed:
            raise SessionClosed(self.object_name)
        for channel in self.channels:
            if channel.failed or channel.handle < 0:
                continue
            request = CloseRequest(handle=channel.handle)
            yield channel.socket.send_op(
                channel.data_address, message=request,
                payload_size=wire_size(request))
            self.stats.packets_sent += 1
            # Best-effort: one short wait for the reply, no retries.
            yield from channel.socket.recv_wait(
                self.open_timeout_s,
                predicate=lambda d: isinstance(d.message, CloseReply))
        for channel in self.channels:
            channel.close()
        self._closed = True

    # -- read path --------------------------------------------------------------------

    def read(self, offset: int, length: int):
        """Process method: returns the bytes [offset, offset+length).

        Reads past end of object are truncated (Unix semantics); holes read
        as zeros.  A single failed data agent is masked via parity.
        """
        self._require_open()
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        length = max(0, min(length, self._size - offset))
        if length == 0:
            yield self.env.timeout(0.0)
            return b""

        op = self._new_op("r")
        self._emit(op, "read-begin", logical_offset=offset,
                   logical_bytes=length)
        buffer = bytearray(length)
        degraded: list = []  # chunks on failed agents
        segments = self.layout.agent_segments(offset, length)
        readers = []
        for agent_index, chunks in segments.items():
            channel = self.data_channels[agent_index]
            if channel.failed:
                degraded.extend(chunks)
                continue
            readers.append(self.env.process(
                self._read_agent(channel, chunks, buffer, offset, op)))
        if readers:
            yield self.env.all_of(readers)
            for process in readers:
                failed_chunks = process.value
                degraded.extend(failed_chunks)
        if degraded:
            yield from self._read_degraded(degraded, buffer, offset, op)
        self._emit(op, "read-end")
        return bytes(buffer)

    def _read_agent(self, channel: _Channel, chunks, buffer: bytearray,
                    base_offset: int, op: Optional[str] = None):
        """One agent's reader: single outstanding request, resubmit on loss.

        Returns the chunks *not* retrieved (empty normally; the remainder
        if the agent fails mid-read).
        """
        pending = list(chunks)
        while pending:
            chunk = pending[0]
            position = 0
            while position < chunk.length:
                span = min(self.packet_size, chunk.length - position)
                piece_offset = chunk.agent_offset + position
                payload = yield from self._fetch_packet(
                    channel, piece_offset, span)
                if payload is None:
                    channel.failed = True
                    # The remainder of this chunk goes back to degraded
                    # reading; report only the bytes actually placed.
                    if position:
                        done, rest = chunk.split(position)
                        self._emit(op, "read-data", agent=channel.index,
                                   logical_offset=done.logical_offset,
                                   nbytes=done.length)
                        return [rest] + pending[1:]
                    return pending
                start = chunk.logical_offset - base_offset + position
                buffer[start:start + len(payload)] = payload
                position += span
            self._emit(op, "read-data", agent=channel.index,
                       logical_offset=chunk.logical_offset,
                       nbytes=chunk.length)
            pending.pop(0)
        return []

    def _fetch_packet(self, channel: _Channel, offset: int, length: int):
        """Request one packet; retry on timeout; None once the agent is
        declared dead."""
        request = ReadRequest(handle=channel.handle,
                              seq=channel.next_seq(),
                              offset=offset, length=length)
        # Drop stale duplicates of older sequence numbers.
        channel.socket.purge(
            lambda d: isinstance(d.message, DataPacket)
            and d.message.seq < request.seq)
        for attempt in range(self.max_retries):
            yield channel.socket.send_op(
                channel.data_address, message=request,
                payload_size=wire_size(request))
            self.stats.packets_sent += 1
            if attempt:
                self.stats.read_retransmits += 1
            datagram = yield from channel.socket.recv_wait(
                self.read_timeout_s,
                predicate=lambda d: isinstance(d.message, DataPacket)
                and d.message.seq == request.seq)
            if datagram is not None:
                self.stats.packets_received += 1
                payload = datagram.message.payload
                if len(payload) < length:
                    # Short read at agent EOF: the rest is zeros (hole).
                    # Pad into a preallocated buffer; slice assignment
                    # accepts any bytes-like payload without flattening
                    # it into an intermediate copy first.
                    padded = bytearray(length)
                    padded[:len(payload)] = payload
                    payload = padded
                return payload
        return None

    # -- degraded read ------------------------------------------------------------------

    def _read_degraded(self, chunks, buffer: bytearray, base_offset: int,
                       op: Optional[str] = None):
        """Serve chunks of failed agents by XOR reconstruction."""
        if not self.parity:
            failed = sorted({self.data_channels[c.agent].agent_host
                             for c in chunks})
            raise AgentFailure(
                f"agents {failed} failed and no redundancy is configured")
        if self.parity_channel.failed:
            raise AgentFailure("parity agent failed alongside a data agent")
        rebuilt: dict[tuple[int, int], bytes] = {}
        for chunk in chunks:
            key = (chunk.stripe, chunk.agent)
            unit = rebuilt.get(key)
            if unit is None:
                unit = yield from self._reconstruct_unit(chunk.stripe,
                                                         chunk.agent, op)
                rebuilt[key] = unit
            within = chunk.agent_offset % self.layout.striping_unit
            piece = unit[within:within + chunk.length]
            start = chunk.logical_offset - base_offset
            buffer[start:start + len(piece)] = piece
            self._emit(op, "read-data", agent=chunk.agent,
                       logical_offset=chunk.logical_offset,
                       nbytes=len(piece))

    def _reconstruct_unit(self, stripe: int, missing_agent: int,
                          op: Optional[str] = None):
        """Fetch stripe siblings plus parity and XOR the lost unit back."""
        unit = self.layout.striping_unit
        unit_offset = self.layout.agent_unit_offset(stripe)
        survivors: list[bytes] = []
        for channel in self.data_channels:
            if channel.index == missing_agent:
                continue
            if channel.failed:
                raise AgentFailure(
                    "two data agents down: single-failure redundancy "
                    "cannot reconstruct")
            payload = yield from self._fetch_packet(channel, unit_offset, unit)
            if payload is None:
                raise AgentFailure(
                    f"agent {channel.agent_host} failed during reconstruction")
            survivors.append(payload)
        parity_payload = yield from self._fetch_packet(
            self.parity_channel, unit_offset, unit)
        if parity_payload is None:
            raise AgentFailure("parity agent failed during reconstruction")
        self.stats.reconstructed_units += 1
        rebuilt = reconstruct_unit(survivors, parity_payload, unit)
        if self.env._transfer_monitors:
            # Emitted with op=None from rebuild paths too: the exact-size
            # invariant holds regardless of the owning operation.
            self.env._notify_transfer(
                "reconstruct-unit", op=op, stripe=stripe,
                agent=missing_agent, nbytes=len(rebuilt), unit_size=unit)
        return rebuilt

    # -- write path --------------------------------------------------------------------

    def write(self, offset: int, data: bytes):
        """Process method: write ``data`` at logical ``offset``.

        With parity on, stripe images are completed (pre-reading old bytes
        of partially covered stripes) so the parity units stay consistent;
        a single failed data agent is tolerated — its units are simply not
        sent, and parity makes them recoverable.
        """
        self._require_open()
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if not data:
            yield self.env.timeout(0.0)
            return 0
        data = _frozen(data)

        op = self._new_op("w")
        self._emit(op, "write-begin", logical_offset=offset,
                   logical_bytes=len(data))
        if self.parity:
            yield from self._write_with_parity(offset, data, op)
        else:
            yield from self._write_plain(offset, data, op)
        self._emit(op, "write-end")
        self._size = max(self._size, offset + len(data))
        return len(data)

    def _write_plain(self, offset: int, data: bytes,
                     op: Optional[str] = None):
        writers = []
        for agent_index, chunks in self.layout.agent_segments(
                offset, len(data)).items():
            channel = self.data_channels[agent_index]
            if channel.failed:
                raise AgentFailure(
                    f"agent {channel.agent_host} failed and no redundancy "
                    "is configured")
            region_offset, payload = self._assemble_region(chunks, data, offset)
            self._emit(op, "write-region", agent=channel.index,
                       region_offset=region_offset, nbytes=len(payload))
            writers.append(self.env.process(
                self._write_agent(channel, region_offset, payload, op)))
        yield self.env.all_of(writers)

    def _write_with_parity(self, offset: int, data: bytes,
                           op: Optional[str] = None):
        layout = self.layout
        unit = layout.striping_unit
        first_stripe = layout.stripe_of(offset)
        last_stripe = layout.stripe_of(offset + len(data) - 1)
        span_start, _ = layout.stripe_bounds(first_stripe)
        _, span_end = layout.stripe_bounds(last_stripe)

        # Build the full image of every touched stripe.  Old bytes are
        # needed only where the write does not cover a stripe completely.
        image = bytearray(span_end - span_start)
        fully_covered = (offset == span_start and
                         offset + len(data) == span_end)
        if not fully_covered and self._size > span_start:
            old_length = min(span_end, self._size) - span_start
            old = yield from self.read(span_start, old_length)
            image[:len(old)] = old
        image[offset - span_start:offset - span_start + len(data)] = data

        writers = []
        for agent_index, chunks in layout.agent_segments(
                offset, len(data)).items():
            channel = self.data_channels[agent_index]
            if channel.failed:
                # Parity will cover this agent's units.
                self._emit(op, "write-skip", agent=channel.index,
                           nbytes=sum(chunk.length for chunk in chunks))
                continue
            region_offset, payload = self._assemble_region(chunks, data, offset)
            self._emit(op, "write-region", agent=channel.index,
                       region_offset=region_offset, nbytes=len(payload))
            writers.append(self.env.process(
                self._write_agent(channel, region_offset, payload, op)))

        # Parity units, one per touched stripe, computed from the images.
        # The XOR kernel consumes memoryview slices of the stripe image
        # directly — no per-unit bytes() copies.
        num_stripes = last_stripe - first_stripe + 1
        image_view = memoryview(image)
        parity_units = []
        for stripe in range(first_stripe, last_stripe + 1):
            base = stripe * layout.stripe_width - span_start
            units = [image_view[base + a * unit: base + (a + 1) * unit]
                     for a in range(layout.num_agents)]
            parity_units.append(compute_parity(units, unit))
        parity_payload = b"".join(parity_units)
        parity_offset = layout.agent_unit_offset(first_stripe)
        if self.parity_channel.failed:
            if self.failed_agents != [self.parity_channel.index]:
                raise AgentFailure("cannot write: data and parity agents down")
        else:
            self._emit(op, "write-parity", agent=self.parity_channel.index,
                       nbytes=len(parity_payload),
                       expected_bytes=num_stripes * unit)
            writers.append(self.env.process(self._write_agent(
                self.parity_channel, parity_offset, parity_payload, op)))
        if writers:
            yield self.env.all_of(writers)

    def _assemble_region(self, chunks, data: bytes, base_offset: int):
        """One agent's chunks as its contiguous file region (zero-copy).

        Returns ``(region_offset, payload)`` where ``payload`` is a
        memoryview into ``data`` when the region is a single chunk (the
        common case for unit-aligned transfers) and a joined ``bytes``
        otherwise.  Callers only slice and measure the payload, so both
        types flow through the packetiser unchanged.
        """
        chunks = sorted(chunks, key=lambda c: c.agent_offset)
        region_offset = chunks[0].agent_offset
        view = memoryview(data)
        if len(chunks) == 1:
            chunk = chunks[0]
            start = chunk.logical_offset - base_offset
            return region_offset, view[start:start + chunk.length]
        parts = []
        expected = region_offset
        for chunk in chunks:
            if chunk.agent_offset != expected:  # pragma: no cover - layout
                raise TransferError("agent region unexpectedly discontiguous")
            start = chunk.logical_offset - base_offset
            parts.append(view[start:start + chunk.length])
            expected += chunk.length
        return region_offset, b"".join(parts)

    def _write_agent(self, channel: _Channel, region_offset: int,
                     payload: bytes, op: Optional[str] = None):
        """§3.1 write: announce, stream, await ACK, retransmit NAKed."""
        op_id = channel.next_op()
        # Drop replies left over from earlier ops on this channel: a
        # duplicated ACK/NAK that arrived after its op completed would
        # otherwise sit in the buffer forever, crowding out live ones.
        channel.socket.purge(
            lambda d: isinstance(d.message, (WriteAck, WriteNak))
            and d.message.op_id < op_id)
        request = WriteRequest(
            handle=channel.handle, op_id=op_id, offset=region_offset,
            length=len(payload), packet_size=self.packet_size)
        yield channel.socket.send_op(
            channel.data_address, message=request,
            payload_size=wire_size(request))
        self.stats.packets_sent += 1
        yield self._stream_packets(channel, request, payload,
                                   range(request.expected_packets), op)

        for _ in range(self.max_retries):
            datagram = yield from channel.socket.recv_wait(
                self.ack_timeout_s,
                predicate=lambda d: isinstance(d.message, (WriteAck, WriteNak))
                and d.message.op_id == op_id)
            if datagram is None:
                self.stats.ack_timeouts += 1
                # Status query: re-send the announcement.
                yield channel.socket.send_op(
                    channel.data_address, message=request,
                    payload_size=wire_size(request))
                self.stats.packets_sent += 1
                continue
            message = datagram.message
            self.stats.packets_received += 1
            if isinstance(message, WriteAck):
                return
            self.stats.naks_received += 1
            self.stats.write_retransmits += len(message.missing)
            yield self._stream_packets(channel, request, payload,
                                       message.missing, op)
        channel.failed = True
        raise TransferError(
            f"agent {channel.agent_host} never acknowledged write op {op_id}")

    def _stream_packets(self, channel: _Channel, request: WriteRequest,
                        payload: bytes, indices,
                        op: Optional[str] = None) -> "_StreamPackets":
        """Send the numbered packets 'as fast as it can' (§3.1), separated
        by the prototype's small wait loop when configured.

        Returns a started callback pump (yieldable event); this is the
        write path's hottest loop, dispatched without a generator."""
        return _StreamPackets(self, channel, request, payload, indices, op)

    # -- health probing -------------------------------------------------------------------

    def probe_agents(self, timeout_s: float = 0.1, attempts: int = 2):
        """Process method: actively check which agents still answer.

        Sends a STAT for the object to every channel's control port and
        marks unresponsive agents failed — proactive detection instead of
        waiting for a data-path timeout.  Returns the (possibly updated)
        list of failed agent indices.
        """
        from .agent_protocol import StatReply, StatRequest
        from .namespace import _request_ids
        for channel in self.channels:
            if channel.failed:
                continue
            alive = False
            for _ in range(attempts):
                request = StatRequest(file_name=self.object_name,
                                      request_id=next(_request_ids))
                yield channel.socket.send_op(
                    channel.control_address, message=request,
                    payload_size=wire_size(request))
                self.stats.packets_sent += 1
                datagram = yield from channel.socket.recv_wait(
                    timeout_s,
                    predicate=lambda d: isinstance(d.message, StatReply)
                    and d.message.request_id == request.request_id)
                if datagram is not None:
                    self.stats.packets_received += 1
                    alive = True
                    break
            if not alive:
                channel.failed = True
        return self.failed_agents

    # -- rebuild ------------------------------------------------------------------------

    def rebuild_agent(self, index: int):
        """Process method: rewrite a replaced agent's file from redundancy.

        After the failed agent's host is repaired (a fresh, empty file
        system), reconstruct every unit it should hold and write them back,
        then clear the failure mark.
        """
        channel = self.channels[index]
        if not self.parity:
            raise AgentFailure("rebuild requires redundancy")
        if index == self.parity_channel.index:
            yield from self._rebuild_parity()
            return
        unit = self.layout.striping_unit
        agent_length = self.layout.agent_lengths(self._size)[index]
        channel.failed = False
        yield from self._open_channel(channel, create=True, truncate=True)
        position = 0
        while position < agent_length:
            stripe = position // unit
            rebuilt = yield from self._reconstruct_unit(stripe, index)
            span = min(unit, agent_length - position)
            yield from self._write_agent(channel, position, rebuilt[:span])
            position += span
        channel.local_size = agent_length

    def _rebuild_parity(self):
        channel = self.parity_channel
        unit = self.layout.striping_unit
        channel.failed = False
        yield from self._open_channel(channel, create=True, truncate=True)
        if self._size == 0:
            return
        last_stripe = self.layout.stripe_of(self._size - 1)
        for stripe in range(last_stripe + 1):
            unit_offset = self.layout.agent_unit_offset(stripe)
            units = []
            for data_channel in self.data_channels:
                payload = yield from self._fetch_packet(
                    data_channel, unit_offset, unit)
                if payload is None:
                    raise AgentFailure(
                        f"agent {data_channel.agent_host} failed during "
                        "parity rebuild")
                units.append(payload)
            parity = compute_parity(units, unit)
            yield from self._write_agent(channel, unit_offset, parity)

    # -- helpers -------------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise SessionClosed(self.object_name)
        if not self._opened:
            raise SwiftUsageError("open() the object before reading/writing")


class SwiftUsageError(RuntimeError):
    """Library misuse (calling read/write before open)."""


class _StreamPackets(CallbackProcess):
    """Callback pump for :meth:`DistributionAgent._stream_packets`.

    Packet for packet the generator's sequence: slice the payload view,
    build the :class:`WriteData`, emit the ledger record, send, count,
    then the optional inter-packet gap.  Started immediately, so the
    first packet's send-cost draw lands exactly where the inline
    ``yield from`` used to execute.
    """

    __slots__ = ("dist", "channel", "request", "payload", "indices",
                 "op", "_pos")

    def __init__(self, dist: DistributionAgent, channel: _Channel,
                 request: WriteRequest, payload: bytes, indices,
                 op: Optional[str]):
        self.dist = dist
        self.channel = channel
        self.request = request
        self.payload = payload
        self.indices = list(indices)
        self.op = op
        self._pos = 0
        super().__init__(dist.env, immediate=True)

    def _start(self, value):
        self._next_packet()

    def _next_packet(self):
        if self._pos >= len(self.indices):
            self._finish()
            return
        dist = self.dist
        channel = self.channel
        request = self.request
        index = self.indices[self._pos]
        start = index * dist.packet_size
        piece = self.payload[start:start + dist.packet_size]
        packet = WriteData(handle=channel.handle, op_id=request.op_id,
                           index=index, offset=request.offset + start,
                           payload=piece)
        dist._emit(self.op, "wire-data", agent=channel.index, index=index,
                   payload_bytes=len(piece))
        self.wait(channel.socket.send_op(channel.data_address,
                                         message=packet,
                                         payload_size=wire_size(packet)),
                  self._sent)

    def _sent(self, value):
        dist = self.dist
        dist.stats.packets_sent += 1
        self._pos += 1
        if dist.interpacket_gap_s:
            # The generator pauses after *every* packet, the last included.
            self.wait_timeout(dist.interpacket_gap_s, self._gap_done)
            return
        self._next_packet()

    def _gap_done(self, value):
        self._next_packet()

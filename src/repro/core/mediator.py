"""The storage mediator: admission control and striping-unit policy.

§2: when a client issues a request, "a storage mediator reserves resources
from all the necessary storage agents and from the communication subsystem
in a session-oriented manner.  The storage mediator then presents a
distribution agent with a transfer plan. ... storage mediators will reject
any request with requirements it is unable to satisfy."

The striping-unit policy is the paper's: "If the required transfer rate is
low, then the striping unit can be large and Swift can spread the data over
only a few storage agents.  If the required data-rate is high, then the
striping unit will be chosen small enough to exploit all the parallelism
needed to satisfy the request."

The mediator is *not* in the data path — it is consulted once per session
(which is also why the §5 simulator omits it).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import AdmissionError
from .session import Reservation, Session
from .transfer_plan import TransferPlan

__all__ = ["AgentDescriptor", "StorageMediator", "MIN_STRIPING_UNIT",
           "MAX_STRIPING_UNIT"]

#: Bounds on the unit the policy may pick.
MIN_STRIPING_UNIT = 4 * 1024
MAX_STRIPING_UNIT = 64 * 1024

#: The striping-unit policy sizes a unit at ~1/8 of each agent's
#: per-second share, keeping roughly this many units in flight per agent.
PIPELINE_DEPTH = 8


@dataclass
class AgentDescriptor:
    """What the mediator knows about one storage agent."""

    name: str
    bandwidth: float  # deliverable bytes/second
    capacity_bytes: int
    committed_bandwidth: float = 0.0
    committed_storage: int = 0

    @property
    def available_bandwidth(self) -> float:
        return max(0.0, self.bandwidth - self.committed_bandwidth)

    @property
    def available_storage(self) -> int:
        return max(0, self.capacity_bytes - self.committed_storage)


class StorageMediator:
    """Registry of agents plus the negotiation logic."""

    def __init__(self, network_capacity: float = float("inf"),
                 packet_size: int = 8192):
        if network_capacity <= 0:
            raise ValueError("network capacity must be positive")
        self.network_capacity = network_capacity
        self.packet_size = packet_size
        self.committed_network = 0.0
        self._agents: dict[str, AgentDescriptor] = {}
        self._order: list[str] = []  # registration order
        self.sessions: list[Session] = []
        #: Object catalog: the layout every stored object was created
        #: with.  Re-opening an object MUST reuse its original plan — a
        #: different striping unit or agent set would misinterpret the
        #: stripes on disk.
        self.catalog: dict[str, TransferPlan] = {}

    # -- registry ------------------------------------------------------------------

    def register_agent(self, name: str, bandwidth: float,
                       capacity_bytes: int) -> AgentDescriptor:
        """Announce a storage agent and its resources."""
        if name in self._agents:
            raise ValueError(f"agent {name!r} already registered")
        if bandwidth <= 0 or capacity_bytes <= 0:
            raise ValueError("bandwidth and capacity must be positive")
        descriptor = AgentDescriptor(name, bandwidth, capacity_bytes)
        self._agents[name] = descriptor
        self._order.append(name)
        return descriptor

    def adopt_agent(self, descriptor: AgentDescriptor) -> AgentDescriptor:
        """Share an agent already registered with another mediator.

        §6: "Several independent storage mediators may control a common
        set of storage agents."  Adopting the *same descriptor object*
        makes the two mediators see each other's commitments, so neither
        can over-subscribe the shared agent.
        """
        if descriptor.name in self._agents:
            raise ValueError(f"agent {descriptor.name!r} already registered")
        self._agents[descriptor.name] = descriptor
        self._order.append(descriptor.name)
        return descriptor

    def agent(self, name: str) -> AgentDescriptor:
        """Look up an agent descriptor."""
        return self._agents[name]

    @property
    def agent_names(self) -> list[str]:
        """Registered agents in registration order."""
        return list(self._order)

    # -- policy -------------------------------------------------------------------

    def choose_striping_unit(self, data_rate: float,
                             num_agents: int) -> int:
        """The §2 policy: high rates get small units (more parallelism).

        The unit is sized so that one second of the required rate spans all
        selected agents several times over; low rates stay at the large end
        of the range so few agents are disturbed per request.
        """
        if num_agents < 1:
            raise ValueError("num_agents must be >= 1")
        if data_rate <= 0:
            return MAX_STRIPING_UNIT
        # Bytes each agent must move per second; a unit of ~1/8 of that
        # keeps the pipeline deep without making packets tiny.  (The 8 is
        # a pipeline-depth target, not a bit-byte factor.)
        per_agent = data_rate / num_agents
        unit = _floor_power_of_two(int(per_agent / PIPELINE_DEPTH))
        return max(MIN_STRIPING_UNIT, min(MAX_STRIPING_UNIT, unit))

    def _select_agents(self, data_rate: float, parity: bool) -> list[str]:
        """Fewest agents that can satisfy the rate (plus one for parity).

        Striping spreads load *uniformly*, so a set of k agents delivers
        k × (slowest member's available bandwidth); the search takes
        agents in decreasing availability and stops at the smallest k
        whose uniform share fits every member.
        """
        if data_rate <= 0:
            # No rate requirement: take every agent (the prototype default).
            chosen = [self._agents[name] for name in self._order]
        else:
            candidates = sorted(
                (self._agents[name] for name in self._order),
                key=lambda a: (-a.available_bandwidth,
                               self._order.index(a.name)),
            )
            chosen = []
            best_deliverable = 0.0
            satisfied = False
            for k, descriptor in enumerate(candidates, start=1):
                if descriptor.available_bandwidth <= 0:
                    break
                chosen.append(descriptor)
                deliverable = k * descriptor.available_bandwidth
                best_deliverable = max(best_deliverable, deliverable)
                if deliverable >= data_rate:
                    satisfied = True
                    break
            if not satisfied:
                raise AdmissionError(
                    f"required data-rate {data_rate:.0f} B/s exceeds what "
                    f"uniform striping can deliver "
                    f"({best_deliverable:.0f} B/s at best)")
        if parity:
            remaining = [self._agents[name] for name in self._order
                         if self._agents[name] not in chosen]
            if remaining:
                parity_choice = min(remaining,
                                    key=lambda a: a.committed_bandwidth)
                chosen.append(parity_choice)
            elif data_rate <= 0 and len(chosen) >= 3:
                # Best-effort session: repurpose the last agent as parity.
                pass
            else:
                raise AdmissionError(
                    "parity requested but no agent is free to hold it")
        return [descriptor.name for descriptor in chosen]

    # -- negotiation ---------------------------------------------------------------

    def negotiate(self, object_name: str, object_size: int,
                  data_rate: float = 0.0, parity: bool = False,
                  striping_unit: int | None = None) -> Session:
        """Admit a session or raise :class:`AdmissionError`.

        ``data_rate`` is the client's required bytes/second (0 means "best
        effort": all agents, large unit).  On success the resources are
        committed until :meth:`Session.close`.
        """
        if object_size < 0:
            raise ValueError("object size must be non-negative")
        if data_rate > 0 and self.committed_network + data_rate > \
                self.network_capacity:
            raise AdmissionError(
                f"network reservation of {data_rate:.0f} B/s exceeds "
                f"remaining capacity "
                f"{self.network_capacity - self.committed_network:.0f} B/s")
        known_plan = self.catalog.get(object_name)
        if known_plan is not None:
            # The object exists: its layout is immutable — a different
            # striping unit or agent set would misread the stripes.  The
            # stored plan wins; an explicitly conflicting unit is refused.
            if striping_unit is not None and \
                    striping_unit != known_plan.striping_unit:
                raise AdmissionError(
                    f"object {object_name!r} was created with a "
                    f"{known_plan.striping_unit}-byte unit; refusing a "
                    f"conflicting layout")
            agent_names = list(known_plan.agent_hosts)
            striping_unit = known_plan.striping_unit
            parity = known_plan.parity
            num_data = known_plan.num_data_agents
        else:
            agent_names = self._select_agents(data_rate, parity)
            num_data = len(agent_names) - 1 if parity else len(agent_names)
            if striping_unit is None:
                striping_unit = self.choose_striping_unit(data_rate,
                                                          num_data)

        per_agent_rate = data_rate / num_data if num_data else 0.0
        per_agent_storage = -(-object_size // max(1, num_data))  # ceil
        reservations = []
        for index, name in enumerate(agent_names):
            descriptor = self._agents[name]
            is_parity = parity and index == len(agent_names) - 1
            storage = per_agent_storage
            rate = per_agent_rate
            if descriptor.available_storage < storage:
                raise AdmissionError(
                    f"agent {name} lacks storage: needs {storage}, has "
                    f"{descriptor.available_storage}")
            if rate > descriptor.available_bandwidth + 1e-9:
                raise AdmissionError(
                    f"agent {name} lacks bandwidth: needs {rate:.0f}, has "
                    f"{descriptor.available_bandwidth:.0f}")
            reservations.append(Reservation(name, rate, storage))

        plan = TransferPlan(
            object_name=object_name,
            agent_hosts=tuple(agent_names),
            striping_unit=striping_unit,
            packet_size=self.packet_size,
            parity=parity,
        )
        for reservation in reservations:
            descriptor = self._agents[reservation.agent]
            descriptor.committed_bandwidth += reservation.bandwidth
            descriptor.committed_storage += reservation.storage_bytes
        self.committed_network += max(0.0, data_rate)
        session = Session(plan, reservations, data_rate,
                          network_bandwidth=data_rate, mediator=self)
        self.sessions.append(session)
        self.catalog[object_name] = plan
        return session

    def forget(self, object_name: str) -> None:
        """Drop an object's catalog entry (after it is removed)."""
        self.catalog.pop(object_name, None)

    def release(self, session: Session) -> None:
        """Return a session's reservations (called by Session.close)."""
        if session in self.sessions:
            self.sessions.remove(session)
            for reservation in session.reservations:
                descriptor = self._agents[reservation.agent]
                descriptor.committed_bandwidth -= reservation.bandwidth
                descriptor.committed_storage -= reservation.storage_bytes
            self.committed_network -= max(0.0, session.data_rate)


def _floor_power_of_two(value: int) -> int:
    """Largest power of two <= value (0 for value < 1)."""
    if value < 1:
        return 0
    return 1 << (value.bit_length() - 1)

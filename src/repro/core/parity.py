"""Computed-copy redundancy: XOR parity over stripe units.

§2: "In the Swift prototype we propose to use computed copy redundancy
since this approach provides resiliency in the presence of a single failure
(per group) at a low cost in terms of storage but at the expense of some
additional computation."

Swift keeps one parity unit per stripe on a dedicated parity agent (the
fixed-parity-agent arrangement of the original RAID paper's level 4, which
is what "computed copy" describes).  Units shorter than the striping unit
are zero-padded for the XOR, matching how short trailing units behave.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "xor_bytes",
    "compute_parity",
    "reconstruct_unit",
    "update_parity",
]


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two byte strings, zero-padding the shorter one."""
    if len(left) < len(right):
        left, right = right, left
    result = bytearray(left)
    for index, value in enumerate(right):
        result[index] ^= value
    return bytes(result)


def compute_parity(units: Iterable[bytes], unit_size: int) -> bytes:
    """The parity unit of a stripe: XOR of its data units.

    Every unit is zero-padded to ``unit_size`` so that parity is always
    exactly one unit long, regardless of trailing short units.
    """
    if unit_size < 1:
        raise ValueError("unit_size must be >= 1")
    parity = bytearray(unit_size)
    seen_any = False
    for unit in units:
        seen_any = True
        if len(unit) > unit_size:
            raise ValueError(
                f"unit of {len(unit)} bytes exceeds unit_size {unit_size}")
        for index, value in enumerate(unit):
            parity[index] ^= value
    if not seen_any:
        raise ValueError("cannot compute parity of zero units")
    return bytes(parity)


def reconstruct_unit(surviving_units: Sequence[bytes], parity: bytes,
                     unit_size: int) -> bytes:
    """Rebuild the missing data unit from its siblings plus parity.

    XOR of parity with every surviving unit yields the lost unit (single
    failure per group — exactly the paper's resiliency claim).
    """
    if len(parity) != unit_size:
        raise ValueError(
            f"parity must be exactly unit_size ({unit_size}) bytes")
    missing = bytearray(parity)
    for unit in surviving_units:
        if len(unit) > unit_size:
            raise ValueError(
                f"unit of {len(unit)} bytes exceeds unit_size {unit_size}")
        for index, value in enumerate(unit):
            missing[index] ^= value
    return bytes(missing)


def update_parity(old_data: bytes, new_data: bytes, old_parity: bytes,
                  unit_size: int) -> bytes:
    """Small-write parity update: parity ^= old_data ^ new_data.

    The read-modify-write shortcut: updating one data unit only needs the
    old unit and the old parity, not the whole stripe.
    """
    if len(old_parity) != unit_size:
        raise ValueError(
            f"parity must be exactly unit_size ({unit_size}) bytes")
    if max(len(old_data), len(new_data)) > unit_size:
        raise ValueError("data units must not exceed unit_size")
    delta = xor_bytes(old_data, new_data)
    return xor_bytes(old_parity, delta.ljust(unit_size, b"\x00"))

"""Computed-copy redundancy: XOR parity over stripe units.

§2: "In the Swift prototype we propose to use computed copy redundancy
since this approach provides resiliency in the presence of a single failure
(per group) at a low cost in terms of storage but at the expense of some
additional computation."

Swift keeps one parity unit per stripe on a dedicated parity agent (the
fixed-parity-agent arrangement of the original RAID paper's level 4, which
is what "computed copy" describes).  Units shorter than the striping unit
are zero-padded for the XOR, matching how short trailing units behave.

The XOR kernels work word-wise: each buffer is read as one little-endian
integer (``int.from_bytes`` — a single C-level pass), XORed, and written
back out with ``to_bytes``.  Little-endian order makes zero-padding free:
a unit shorter than ``unit_size`` is missing its *trailing* bytes, which
land in the integer's high-order positions and are implicitly zero, and
``to_bytes(unit_size)`` re-pads the result without an intermediate copy.
Every kernel accepts any bytes-like object (``bytes``, ``bytearray``,
``memoryview``) so zero-copy slices flow straight through.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "xor_bytes",
    "compute_parity",
    "reconstruct_unit",
    "update_parity",
]


def xor_bytes(left, right) -> bytes:
    """XOR two byte strings, zero-padding the shorter one."""
    size = len(left)
    if size < len(right):
        size = len(right)
    return (int.from_bytes(left, "little")
            ^ int.from_bytes(right, "little")).to_bytes(size, "little")


def compute_parity(units: Iterable[bytes], unit_size: int) -> bytes:
    """The parity unit of a stripe: XOR of its data units.

    Every unit is zero-padded to ``unit_size`` so that parity is always
    exactly one unit long, regardless of trailing short units.
    """
    if unit_size < 1:
        raise ValueError("unit_size must be >= 1")
    accumulator = 0
    seen_any = False
    for unit in units:
        seen_any = True
        if len(unit) > unit_size:
            raise ValueError(
                f"unit of {len(unit)} bytes exceeds unit_size {unit_size}")
        accumulator ^= int.from_bytes(unit, "little")
    if not seen_any:
        raise ValueError("cannot compute parity of zero units")
    return accumulator.to_bytes(unit_size, "little")


def reconstruct_unit(surviving_units: Sequence[bytes], parity: bytes,
                     unit_size: int) -> bytes:
    """Rebuild the missing data unit from its siblings plus parity.

    XOR of parity with every surviving unit yields the lost unit (single
    failure per group — exactly the paper's resiliency claim).
    """
    if len(parity) != unit_size:
        raise ValueError(
            f"parity must be exactly unit_size ({unit_size}) bytes")
    accumulator = int.from_bytes(parity, "little")
    for unit in surviving_units:
        if len(unit) > unit_size:
            raise ValueError(
                f"unit of {len(unit)} bytes exceeds unit_size {unit_size}")
        accumulator ^= int.from_bytes(unit, "little")
    return accumulator.to_bytes(unit_size, "little")


def update_parity(old_data: bytes, new_data: bytes, old_parity: bytes,
                  unit_size: int) -> bytes:
    """Small-write parity update: parity ^= old_data ^ new_data.

    The read-modify-write shortcut: updating one data unit only needs the
    old unit and the old parity, not the whole stripe.  The zero-padding
    of short deltas is folded into the word-wise XOR (the short unit's
    missing tail is the integer's implicit high zeros), so no padded
    intermediate copy is ever built.
    """
    if len(old_parity) != unit_size:
        raise ValueError(
            f"parity must be exactly unit_size ({unit_size}) bytes")
    if max(len(old_data), len(new_data)) > unit_size:
        raise ValueError("data units must not exceed unit_size")
    return (int.from_bytes(old_parity, "little")
            ^ int.from_bytes(old_data, "little")
            ^ int.from_bytes(new_data, "little")).to_bytes(
                unit_size, "little")

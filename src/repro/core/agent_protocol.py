"""Wire messages of the light-weight data transfer protocol (§3.1).

The protocol runs over unreliable datagrams:

* ``OPEN`` to an agent's well-known port spawns a secondary handler with a
  private port; all further traffic for that file uses the private port.
* ``READ-REQ`` asks for one packet; the agent answers with one ``DATA``.
  The client keeps exactly one outstanding request per agent and resubmits
  on loss — no acknowledgements needed.
* ``WRITE-REQ`` announces an operation (id, offset, length, packet size) so
  the agent "can calculate which packets are expected"; the client then
  streams ``WRITE-DATA`` packets as fast as it can.  The agent answers
  ``WRITE-ACK`` when everything arrived or ``WRITE-NAK`` listing the missing
  packet indices.  Re-sending ``WRITE-REQ`` for a known operation is a
  status query (used by the client after an ack timeout).
* ``CLOSE`` expires the handle, releases the private port.

Message sizes model the prototype's small binary headers: control messages
are 64 bytes on the wire; data-bearing messages are payload plus a 32-byte
header (the UDP/IP header is added by the socket layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CONTROL_SIZE_BYTES",
    "DATA_HEADER_SIZE_BYTES",
    "CONTROL_SIZE",
    "DATA_HEADER_SIZE",
    "OpenRequest",
    "OpenReply",
    "ReadRequest",
    "DataPacket",
    "WriteRequest",
    "WriteData",
    "WriteAck",
    "WriteNak",
    "CloseRequest",
    "CloseReply",
    "RemoveRequest",
    "RemoveReply",
    "StatRequest",
    "StatReply",
    "ListRequest",
    "ListReply",
    "wire_size",
]

#: Wire bytes of a control message (before UDP/IP headers).
CONTROL_SIZE_BYTES = 64
#: Header bytes carried by each data-bearing packet.
DATA_HEADER_SIZE_BYTES = 32

#: Pre-suffix-convention aliases.
CONTROL_SIZE = CONTROL_SIZE_BYTES
DATA_HEADER_SIZE = DATA_HEADER_SIZE_BYTES


@dataclass(frozen=True)
class OpenRequest:
    """Open (and optionally create) a file on an agent."""

    file_name: str
    create: bool
    truncate: bool
    request_id: int


@dataclass(frozen=True)
class OpenReply:
    """Agent's answer: the private port and the local file size."""

    request_id: int
    ok: bool
    handle: int = -1
    private_port: int = -1
    local_size: int = 0
    error: str = ""


@dataclass(frozen=True)
class ReadRequest:
    """Ask for one packet of the file."""

    handle: int
    seq: int
    offset: int
    length: int


@dataclass(frozen=True)
class DataPacket:
    """One packet of file data (the answer to a ReadRequest)."""

    handle: int
    seq: int
    offset: int
    payload: bytes


@dataclass(frozen=True)
class WriteRequest:
    """Announce a write operation (or query its status when re-sent)."""

    handle: int
    op_id: int
    offset: int
    length: int
    packet_size: int

    @property
    def expected_packets(self) -> int:
        """How many WRITE-DATA packets the agent should expect."""
        if self.length == 0:
            return 0
        return -(-self.length // self.packet_size)  # ceil division


@dataclass(frozen=True)
class WriteData:
    """One packet of a write operation's data stream."""

    handle: int
    op_id: int
    index: int
    offset: int
    payload: bytes


@dataclass(frozen=True)
class WriteAck:
    """Every expected packet arrived; the data is accepted."""

    handle: int
    op_id: int


@dataclass(frozen=True)
class WriteNak:
    """Some packets are missing; the client must retransmit these indices."""

    handle: int
    op_id: int
    missing: tuple[int, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class RemoveRequest:
    """Unlink a file on the agent (namespace op, control port)."""

    file_name: str
    request_id: int


@dataclass(frozen=True)
class RemoveReply:
    """Acknowledgement of a remove (idempotent: ok even if absent)."""

    request_id: int
    existed: bool


@dataclass(frozen=True)
class StatRequest:
    """Ask for a file's local size (namespace op, control port)."""

    file_name: str
    request_id: int


@dataclass(frozen=True)
class StatReply:
    """The agent's answer to a stat."""

    request_id: int
    exists: bool
    local_size: int = 0


@dataclass(frozen=True)
class ListRequest:
    """Ask for the agent's file names (namespace op, control port)."""

    request_id: int


@dataclass(frozen=True)
class ListReply:
    """The agent's directory listing."""

    request_id: int
    names: tuple[str, ...]


@dataclass(frozen=True)
class CloseRequest:
    """Expire the handle and release the private port."""

    handle: int


@dataclass(frozen=True)
class CloseReply:
    """Acknowledgement of a close."""

    handle: int


def wire_size(message) -> int:
    """Bytes this message occupies on the wire (excluding UDP/IP headers)."""
    if isinstance(message, (DataPacket, WriteData)):
        return DATA_HEADER_SIZE_BYTES + len(message.payload)
    if isinstance(message, WriteNak):
        # 4 bytes per missing index on top of the control header.
        return CONTROL_SIZE_BYTES + 4 * len(message.missing)
    if isinstance(message, ListReply):
        return CONTROL_SIZE_BYTES + sum(len(name) + 1
                                        for name in message.names)
    return CONTROL_SIZE_BYTES

"""The Swift architecture: striping, parity, mediator, agents, client."""

from .agent_protocol import (
    CONTROL_SIZE,
    CONTROL_SIZE_BYTES,
    DATA_HEADER_SIZE,
    DATA_HEADER_SIZE_BYTES,
    CloseReply,
    CloseRequest,
    DataPacket,
    OpenReply,
    OpenRequest,
    ReadRequest,
    WriteAck,
    WriteData,
    WriteNak,
    WriteRequest,
    wire_size,
)
from .buffered import BufferedSwiftFile
from .client import SwiftClient, SwiftFile
from .deployment import (
    LoopbackMedium,
    SwiftDeployment,
    build_local_swift,
)
from .distribution import DistributionAgent, TransferStats
from .errors import (
    AdmissionError,
    AgentFailure,
    DegradedModeError,
    ObjectExists,
    ObjectNotFound,
    SessionClosed,
    SwiftError,
    TransferError,
)
from .namespace import NamespaceClient
from .mediator import (
    MAX_STRIPING_UNIT,
    MIN_STRIPING_UNIT,
    AgentDescriptor,
    StorageMediator,
)
from .parity import compute_parity, reconstruct_unit, update_parity, xor_bytes
from .session import Reservation, Session
from .storage_agent import WELL_KNOWN_PORT, AgentStats, StorageAgent
from .streaming import (
    PlaybackReport,
    PlaybackSession,
    RecordingReport,
    RecordingSession,
)
from .striping import Chunk, StripeLayout
from .transfer_plan import TransferPlan

__all__ = [
    # striping / parity
    "StripeLayout", "Chunk",
    "xor_bytes", "compute_parity", "reconstruct_unit", "update_parity",
    # plans / sessions / mediator
    "TransferPlan", "Session", "Reservation",
    "StorageMediator", "AgentDescriptor",
    "MIN_STRIPING_UNIT", "MAX_STRIPING_UNIT",
    # agents / client
    "StorageAgent", "AgentStats", "WELL_KNOWN_PORT",
    "PlaybackSession", "PlaybackReport",
    "RecordingSession", "RecordingReport",
    "NamespaceClient",
    "DistributionAgent", "TransferStats",
    "SwiftClient", "SwiftFile", "BufferedSwiftFile",
    # deployment
    "SwiftDeployment", "build_local_swift", "LoopbackMedium",
    # protocol
    "OpenRequest", "OpenReply", "ReadRequest", "DataPacket",
    "WriteRequest", "WriteData", "WriteAck", "WriteNak",
    "CloseRequest", "CloseReply", "wire_size",
    "CONTROL_SIZE", "DATA_HEADER_SIZE",
    "CONTROL_SIZE_BYTES", "DATA_HEADER_SIZE_BYTES",
    # errors
    "SwiftError", "AdmissionError", "ObjectNotFound", "ObjectExists",
    "AgentFailure", "TransferError", "DegradedModeError", "SessionClosed",
]

"""Result rendering: terminal charts and CSV export."""

from .ascii_chart import render_chart
from .export import figure_points_to_csv, table_to_csv, write_csv

__all__ = [
    "render_chart",
    "table_to_csv",
    "figure_points_to_csv",
    "write_csv",
]

"""CSV export of tables and figure series (for external plotting)."""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping

from ..des import SampleSet

__all__ = ["table_to_csv", "figure_points_to_csv", "write_csv"]


def table_to_csv(rows: Mapping[str, SampleSet],
                 confidence: float = 0.90) -> str:
    """One CSV line per table row: the paper's columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["operation", "mean", "stdev", "min", "max",
                     "ci_low", "ci_high", "samples"])
    for name, samples in rows.items():
        row = samples.row(confidence)
        writer.writerow([
            name,
            f"{row['mean']:.2f}", f"{row['stdev']:.3f}",
            f"{row['min']:.2f}", f"{row['max']:.2f}",
            f"{row['ci_low']:.2f}", f"{row['ci_high']:.2f}",
            len(samples),
        ])
    return buffer.getvalue()


def figure_points_to_csv(points: Iterable) -> str:
    """One CSV line per figure point, with the run diagnostics."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", "x", "y", "sustainable", "completed",
                     "disk_utilization", "ring_utilization"])
    for point in points:
        result = point.result
        writer.writerow([
            point.series, point.x, f"{point.y:.4f}",
            result.sustainable, result.completed,
            f"{result.mean_disk_utilization:.4f}",
            f"{result.ring_utilization:.4f}",
        ])
    return buffer.getvalue()


def write_csv(path, text: str) -> None:
    """Write exported CSV text to a file path."""
    with open(path, "w", newline="") as handle:
        handle.write(text)

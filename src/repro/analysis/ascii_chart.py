"""Terminal line charts for the reproduced figures.

No plotting dependency is available offline, so the figure benchmarks and
the CLI render series as ASCII charts — good enough to eyeball the knees
and crossovers the paper's figures show.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_chart"]

#: Symbols assigned to series, in order.
_MARKS = "o*x+#@%&"


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.3g}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:.3g}k"
    if magnitude >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"


def render_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 64,
    height: int = 20,
    y_max: float | None = None,
) -> str:
    """Render named (x, y) series as a text chart.

    ``y_max`` clips the vertical range (the paper's figures do the same:
    saturated curves run off the top of the chart).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low = 0.0
    y_high = y_max if y_max is not None else max(ys)
    if y_high <= y_low:
        y_high = y_low + 1.0
    if x_high <= x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        clipped = min(y, y_high)
        row = round((clipped - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = mark

    legend = []
    for index, (name, values) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        legend.append(f"{mark} = {name}")
        for x, y in values:
            place(x, y, mark if y <= y_high else "^")

    lines = []
    if title:
        lines.append(title)
    top_label = _format_number(y_high)
    lines.append(f"{top_label:>8} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    bottom_label = _format_number(y_low)
    lines.append(f"{bottom_label:>8} ┤" + "".join(grid[-1]))
    lines.append(" " * 8 + " └" + "─" * width)
    left = _format_number(x_low)
    right = _format_number(x_high)
    padding = max(1, width - len(left) - len(right))
    lines.append(" " * 10 + left + " " * padding + right)
    lines.append(f"{'':>10}{x_label}  (y: {y_label}; ^ = clipped)")
    lines.extend("  " + entry for entry in legend)
    return "\n".join(lines)

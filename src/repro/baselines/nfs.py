"""The NFS baseline of Table 3.

§4: "The NFS measurements [were] made using a Sun 4/390 with 32 megabytes
of memory and IPI disk drives under SunOS 4.1 as a server, and a Sun 4/75
(sparcstation 2) as the client ... run over a lightly-loaded shared
departmental Ethernet-based local-area network [at] less than 5% of its
capacity."

The model is NFSv2-shaped: 8 KB block RPCs over UDP; the server is
write-through ("the write data-rate measurements in NFS reflect the
write-through policy of the server") — every WRITE RPC forces the data
block plus its metadata synchronously to the IPI disk before the reply.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..des import Environment, StreamFactory
from ..simdisk import DISK_CATALOG, Disk, LocalFileSystem
from ..simnet import Address, Network
from ..calibration import (
    DEPARTMENTAL_BACKGROUND_LOAD,
    HOST_NOISE_FRACTION,
    NFS_BLOCK_SIZE,
    NFS_METADATA_WRITES,
    NFS_SERVER_RECV_COST,
    NFS_SERVER_SEND_COST,
    SS2_RECV_COST,
    SS2_SEND_COST,
)

__all__ = ["NfsBaseline", "NFS_PORT", "NFS_SERVER_RPC_OVERHEAD_S"]

NFS_PORT = 2049
KILOBYTE = 1 << 10

#: Per-RPC server-side protocol processing (RPC/XDR decode, nfsd dispatch).
NFS_SERVER_RPC_OVERHEAD_S = 1.0e-3

_xids = itertools.count(1)


@dataclass(frozen=True)
class ReadRpc:
    xid: int
    file_name: str
    offset: int
    count: int


@dataclass(frozen=True)
class ReadReply:
    xid: int
    payload: bytes


@dataclass(frozen=True)
class WriteRpc:
    xid: int
    file_name: str
    offset: int
    payload: bytes


@dataclass(frozen=True)
class WriteReply:
    xid: int


def _rpc_wire_size(message) -> int:
    if isinstance(message, (ReadReply, WriteRpc)):
        return 96 + len(message.payload)
    return 96


class _NfsServer:
    """One nfsd: decodes RPCs, hits the IPI file system, replies."""

    def __init__(self, env: Environment, host, filesystem: LocalFileSystem):
        self.env = env
        self.host = host
        self.filesystem = filesystem
        self.socket = host.bind(NFS_PORT, buffer_packets=32)
        self._prefetched_upto = 0
        env.process(self._serve())

    def _serve(self):
        while True:
            datagram = yield self.socket.recv()
            message = datagram.message
            yield from self.host.consume_cpu(NFS_SERVER_RPC_OVERHEAD_S)
            if isinstance(message, ReadRpc):
                yield from self._read(message, datagram.src)
            elif isinstance(message, WriteRpc):
                yield from self._write(message, datagram.src)

    def _read(self, rpc: ReadRpc, reply_to: Address):
        fs = self.filesystem
        if not fs.exists(rpc.file_name):
            fs.create(rpc.file_name)
        self._last_file = rpc.file_name
        payload = yield from fs.read(rpc.file_name, rpc.offset, rpc.count)
        reply = ReadReply(xid=rpc.xid, payload=bytes(payload))
        yield from self.socket.send(reply_to, message=reply,
                                    payload_size=_rpc_wire_size(reply))
        self._readahead(rpc.file_name, rpc.offset + rpc.count, rpc.count)

    def _readahead(self, name: str, offset: int, length: int) -> None:
        """A read-ahead daemon, like the real server's."""
        if length <= 0 or offset < self._prefetched_upto:
            return
        self._prefetched_upto = offset + length

        def prefetcher():
            yield from self.filesystem.read(name, offset, length)

        self.env.process(prefetcher())

    def _write(self, rpc: WriteRpc, reply_to: Address):
        fs = self.filesystem
        if not fs.exists(rpc.file_name):
            fs.create(rpc.file_name)
        # Write-through: data synchronously, then the metadata updates
        # (inode + indirect block on NFSv2) as separate positioned writes.
        yield from fs.write(rpc.file_name, rpc.offset, rpc.payload, sync=True)
        for _ in range(NFS_METADATA_WRITES):
            yield from fs.disk.access(512)
        reply = WriteReply(xid=rpc.xid)
        yield from self.socket.send(reply_to, message=reply,
                                    payload_size=_rpc_wire_size(reply))

    _last_file: str = ""


class NfsBaseline:
    """A complete NFS client/server pair on a shared Ethernet."""

    def __init__(self, seed: int = 0,
                 background_load: float = DEPARTMENTAL_BACKGROUND_LOAD):
        self.env = Environment()
        self.streams = StreamFactory(seed)
        self.network = Network(self.env, self.streams)
        self.network.add_ethernet("departmental",
                                  background_fraction=background_load)
        self.client_host = self.network.add_host(
            "nfs-client", send_cost=SS2_SEND_COST, recv_cost=SS2_RECV_COST,
            noise_fraction=HOST_NOISE_FRACTION)
        server_host = self.network.add_host(
            "nfs-server", send_cost=NFS_SERVER_SEND_COST,
            recv_cost=NFS_SERVER_RECV_COST,
            noise_fraction=HOST_NOISE_FRACTION)
        self.network.connect("nfs-client", "departmental",
                             tx_queue_packets=64)
        self.network.connect("nfs-server", "departmental",
                             tx_queue_packets=64)
        server_fs = LocalFileSystem(
            self.env,
            Disk(self.env, DISK_CATALOG["Sun IPI"],
                 stream=self.streams.stream("ipi-disk")),
            block_size=NFS_BLOCK_SIZE,
            cache_blocks=4096,  # 32 MB of server RAM
        )
        self.server = _NfsServer(self.env, server_host, server_fs)
        self.client_socket = self.client_host.bind(buffer_packets=16)
        self._server_address = Address("nfs-server", NFS_PORT)

    # -- RPC plumbing -----------------------------------------------------------

    def _run(self, generator):
        return self.env.run(until=self.env.process(generator))

    def _call(self, message, reply_type):
        yield from self.client_socket.send(
            self._server_address, message=message,
            payload_size=_rpc_wire_size(message))
        datagram = yield self.client_socket.recv(
            lambda d: isinstance(d.message, reply_type)
            and d.message.xid == message.xid)
        return datagram.message

    # -- workloads ----------------------------------------------------------------

    def prepare_file(self, name: str, size: int) -> None:
        """Install the file on the server without timing, then cold-cache."""
        fs = self.server.filesystem
        fs.create(name)

        def setup():
            yield from fs.write(name, 0, b"\xC3" * size)

        self._run(setup())
        fs.flush_cache()
        self.server._last_file = name

    def measure_read(self, name: str, size: int) -> float:
        """Sequential NFS read; returns the data-rate in KB/s."""
        self.server.filesystem.flush_cache()
        self.server._last_file = name
        self.server._prefetched_upto = 0
        start = self.env.now

        def workload():
            position = 0
            while position < size:
                count = min(NFS_BLOCK_SIZE, size - position)
                rpc = ReadRpc(xid=next(_xids), file_name=name,
                              offset=position, count=count)
                reply = yield from self._call(rpc, ReadReply)
                position += len(reply.payload)

        self._run(workload())
        return size / KILOBYTE / (self.env.now - start)

    def measure_write(self, name: str, size: int) -> float:
        """Sequential NFS write (write-through); data-rate in KB/s."""
        start = self.env.now

        def workload():
            position = 0
            while position < size:
                count = min(NFS_BLOCK_SIZE, size - position)
                rpc = WriteRpc(xid=next(_xids), file_name=name,
                               offset=position, payload=b"\x3C" * count)
                yield from self._call(rpc, WriteReply)
                position += count

        self._run(workload())
        return size / KILOBYTE / (self.env.now - start)

"""The local-SCSI baseline of Table 2.

§4: "The measurements for a local SCSI disk connected to a Sun 4/20 (SLC)
with 16 megabytes of memory under SunOS 4.1.1 ... All measurements were
taken with a cold cache. ... All write operations to the SCSI disk were
done synchronously."
"""

from __future__ import annotations

from ..des import Environment, StreamFactory
from ..simdisk import LocalFileSystem, ScsiMode, make_scsi_filesystem

__all__ = ["LocalScsiBaseline"]

KILOBYTE = 1 << 10


class LocalScsiBaseline:
    """Sequential file I/O on a host's local SCSI disk."""

    def __init__(self, seed: int = 0, mode: ScsiMode = ScsiMode.SYNCHRONOUS,
                 disk_model: str = "Sun 104MB SCSI"):
        self.env = Environment()
        streams = StreamFactory(seed)
        self.filesystem: LocalFileSystem = make_scsi_filesystem(
            self.env, disk_model=disk_model, mode=mode,
            stream=streams.stream("scsi-disk"))

    # -- workloads ------------------------------------------------------------

    def _run(self, generator):
        return self.env.run(until=self.env.process(generator))

    def prepare_file(self, name: str, size: int) -> None:
        """Create the file contents without timing them (setup phase)."""
        def setup():
            self.filesystem.create(name)
            yield from self.filesystem.write(name, 0, b"\xA5" * size)

        self._run(setup())
        self.filesystem.flush_cache()  # the /etc/umount cold-cache trick

    def measure_read(self, name: str, size: int,
                     chunk: int = 8192) -> float:
        """Sequential cold-cache read; returns the data-rate in KB/s."""
        self.filesystem.flush_cache()
        start = self.env.now

        def workload():
            position = 0
            while position < size:
                data = yield from self.filesystem.read(
                    name, position, min(chunk, size - position))
                position += len(data)

        self._run(workload())
        elapsed = self.env.now - start
        return size / KILOBYTE / elapsed

    def measure_write(self, name: str, size: int,
                      chunk: int = 8192) -> float:
        """Sequential synchronous write; returns the data-rate in KB/s."""
        start = self.env.now

        def workload():
            self.filesystem.create(name)
            position = 0
            payload = b"\x5A" * chunk
            while position < size:
                span = min(chunk, size - position)
                yield from self.filesystem.write(
                    name, position, payload[:span], sync=True)
                position += span

        self._run(workload())
        elapsed = self.env.now - start
        return size / KILOBYTE / elapsed

"""The comparators the paper measures Swift against (Tables 2 and 3)."""

from .local_scsi import LocalScsiBaseline
from .nfs import NfsBaseline

__all__ = ["LocalScsiBaseline", "NfsBaseline"]

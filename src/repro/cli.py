"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro table1 [--samples 8] [--sizes 3,6,9]
    python -m repro table2 | table3 | table4
    python -m repro fig3 | fig4 [--requests 300] [--csv out.csv]
    python -m repro fig5 | fig6 [--requests 250] [--csv out.csv]
    python -m repro demo            # the quickstart, end to end
    python -m repro check [--json]  # determinism & protocol invariants
"""

from __future__ import annotations

import argparse
import sys

from .analysis import figure_points_to_csv, render_chart, table_to_csv, write_csv

__all__ = ["main"]

KB = 1 << 10


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(piece) for piece in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size list {text!r}") from None
    if not sizes or any(size < 1 for size in sizes):
        raise argparse.ArgumentTypeError("sizes must be positive megabytes")
    return sizes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce results from 'Exploiting Multiple I/O "
                    "Streams to Provide High Data-Rates' (USENIX 1991).")
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table1", "table2", "table3", "table4"):
        table_parser = sub.add_parser(
            table, help=f"regenerate {table} of the paper")
        table_parser.add_argument("--samples", type=int, default=8,
                                  help="runs per cell (paper: 8)")
        table_parser.add_argument("--sizes", type=_parse_sizes,
                                  default=(3, 6, 9),
                                  help="transfer sizes in MB (paper: 3,6,9)")
        table_parser.add_argument("--csv", help="also write CSV here")

    for figure in ("fig3", "fig4", "fig5", "fig6"):
        figure_parser = sub.add_parser(
            figure, help=f"regenerate {figure} of the paper")
        figure_parser.add_argument("--requests", type=int, default=250,
                                   help="measured completions per run")
        figure_parser.add_argument("--csv", help="also write CSV here")

    sensitivity_parser = sub.add_parser(
        "sensitivity",
        help="bottleneck location: speed each component up, see what moves")
    sensitivity_parser.add_argument("--operation", choices=("read", "write"),
                                    default="read")
    sensitivity_parser.add_argument("--scale", type=float, default=2.0,
                                    help="speed-up factor (default 2.0)")

    sub.add_parser("demo", help="run the quickstart demo")

    check_parser = sub.add_parser(
        "check",
        help="static determinism lint + protocol-invariant verification")
    from .check.cli import add_check_arguments
    add_check_arguments(check_parser)
    return parser


def _run_table(args) -> int:
    from .prototype import (
        PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4,
        format_comparison, format_table,
        run_nfs_table, run_scsi_table, run_swift_table,
    )
    runners = {
        "table1": (lambda: run_swift_table(sizes_mb=args.sizes,
                                           samples=args.samples),
                   PAPER_TABLE1, "Table 1 — Swift, one Ethernet"),
        "table2": (lambda: run_scsi_table(sizes_mb=args.sizes,
                                          samples=args.samples),
                   PAPER_TABLE2, "Table 2 — local SCSI"),
        "table3": (lambda: run_nfs_table(sizes_mb=args.sizes,
                                         samples=args.samples),
                   PAPER_TABLE3, "Table 3 — NFS"),
        "table4": (lambda: run_swift_table(second_ethernet=True,
                                           sizes_mb=args.sizes,
                                           samples=args.samples),
                   PAPER_TABLE4, "Table 4 — Swift, two Ethernets"),
    }
    runner, paper, title = runners[args.command]
    rows = runner()
    print(format_table(f"{title} (KB/s)", rows))
    print()
    print(format_comparison(f"{title} vs paper", rows, paper))
    if args.csv:
        write_csv(args.csv, table_to_csv(rows))
        print(f"\nCSV written to {args.csv}")
    return 0


def _run_figure(args) -> int:
    from .sim import (
        figure3_series, figure4_series, figure5_series, figure6_series,
    )
    if args.command == "fig3":
        points = figure3_series(num_requests=args.requests)
        title = "Figure 3 — mean completion (ms) vs req/s, 1 MB requests"
        x_label, y_label, y_max = "requests/second", "ms", 2000.0
    elif args.command == "fig4":
        points = figure4_series(num_requests=args.requests)
        title = "Figure 4 — mean completion (ms) vs req/s, 128 KB requests"
        x_label, y_label, y_max = "requests/second", "ms", 1500.0
    elif args.command == "fig5":
        points = figure5_series(num_requests=args.requests)
        title = "Figure 5 — max sustainable data-rate, 4 KB units"
        x_label, y_label, y_max = "disks", "bytes/s", None
    else:
        points = figure6_series(num_requests=args.requests)
        title = "Figure 6 — max sustainable data-rate, 32 KB units"
        x_label, y_label, y_max = "disks", "bytes/s", None

    series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        series.setdefault(point.series, []).append((point.x, point.y))
    print(render_chart(series, title=title, x_label=x_label,
                       y_label=y_label, y_max=y_max))
    if args.csv:
        write_csv(args.csv, figure_points_to_csv(points))
        print(f"\nCSV written to {args.csv}")
    return 0


def _run_sensitivity(args) -> int:
    from .prototype.sensitivity import COMPONENTS, sensitivity_table
    table = sensitivity_table(args.operation, scale=args.scale)
    print(f"Component sensitivity — {args.operation}, each component "
          f"{args.scale:g}x faster in isolation")
    print(f"(baseline {table['baseline']:.0f} KB/s)\n")
    for component in COMPONENTS:
        gain = table[component]
        bar = "#" * max(0, round((gain - 1.0) * 50))
        print(f"  {component:<12} {gain:5.2f}x  {bar}")
    return 0


def _run_demo() -> int:
    from .core import build_local_swift
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    with client.open("demo", "w") as handle:
        payload = b"high data-rates from multiple I/O streams\n" * 500
        handle.write(payload)
        handle.seek(0)
        ok = handle.read(len(payload)) == payload
    print(f"wrote and re-read {len(payload)} bytes over "
          f"{len(deployment.agents)} storage agents: "
          f"{'OK' if ok else 'CORRUPT'}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command.startswith("table"):
        return _run_table(args)
    if args.command.startswith("fig"):
        return _run_figure(args)
    if args.command == "sensitivity":
        return _run_sensitivity(args)
    if args.command == "check":
        from .check.cli import run_check_command
        return run_check_command(args)
    return _run_demo()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

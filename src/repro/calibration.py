"""Calibrated constants of the §3-§4 prototype emulation.

The paper measured its prototype on real hardware we do not have: a
SPARCstation 2 client, SPARCstation SLC servers, a dedicated 10 Mb/s
Ethernet, SunOS 4.1.1.  We replace the hardware with the DES models in
:mod:`repro.simnet` / :mod:`repro.simdisk` and pin the free parameters (host
CPU per-packet and per-byte costs, the prototype's write wait loop, the
S-bus penalty) to the *published anchors*:

* "the utilization of the network ranged from 77 % to 80 % of its measured
  maximum capacity of 1.12 megabytes/second" (§4) — so Swift with three
  agents must land near 880 KB/s on one Ethernet for both reads and writes
  (Table 1);
* Table 2's local SCSI rates (read ≈ 670, write ≈ 315 KB/s, sync mode) —
  calibrated in :mod:`repro.simdisk.scsi`;
* Table 3's NFS rates (read ≈ 470, write ≈ 110 KB/s);
* Table 4: adding a second (S-bus) Ethernet almost doubles writes
  (≈ 1660 KB/s) but lifts reads only ~25 % (≈ 1130 KB/s) because the
  client CPU saturates on the receive path (§4.1);
* "we had to incorporate a small wait loop between write operations"
  (§3.1) — the inter-packet gap below.

Derivation sketch (8 KB data packets = 8252 B datagrams = 6 Ethernet
fragments = 6.88 ms of cable):

* read cycle per agent (one outstanding request, §3.1):
  ``c_req + wire_req + agent_recv + agent_send + wire_data + c_rx``
  must be ≈ 27.9 ms so that three agents deliver ≈ 880 KB/s;
* the client receive cost ``c_rx + c_req`` must average ≈ 7.3 ms per
  packet so the *dual*-net read saturates the client CPU near 1130 KB/s;
* the client send cost ``c_tx`` must be ≈ 4.3 ms so the dual-net write can
  reach ≈ 1660 KB/s, and the wait loop then throttles the single-net write
  to ≈ 880 KB/s.
"""

from __future__ import annotations

from .simnet import CostModel

__all__ = [
    "PACKET_SIZE",
    "ETHERNET_MEASURED_CAPACITY",
    "SS2_SEND_COST",
    "SS2_RECV_COST",
    "SLC_SEND_COST",
    "SLC_RECV_COST",
    "NFS_SERVER_SEND_COST",
    "NFS_SERVER_RECV_COST",
    "SBUS_CPU_SCALE",
    "WRITE_INTERPACKET_GAP_S",
    "HOST_NOISE_FRACTION",
    "DEPARTMENTAL_BACKGROUND_LOAD",
    "READ_TIMEOUT_S",
    "ACK_TIMEOUT_S",
    "OPEN_TIMEOUT_S",
    "NFS_BLOCK_SIZE",
    "NFS_METADATA_WRITES",
    "NFS_READ_PIPELINE",
    "TCP_EXTRA_COPY_COST_PER_BYTE_S",
    "TCP_SELECT_COST_PER_PACKET_S",
    "tcp_variant",
]

#: The prototype's network transfer unit (one UDP datagram of file data).
PACKET_SIZE = 8192

#: §4: the measured maximum capacity of the dedicated Ethernet.
ETHERNET_MEASURED_CAPACITY = 1.12e6  # bytes/second

#: SPARCstation 2 (the client).  Sends are cheaper than receives (no
#: checksum verification + copy-out on the rx path dominated SunOS).
SS2_SEND_COST = CostModel(per_packet_s=0.50e-3, per_byte_s=0.46e-6)
SS2_RECV_COST = CostModel(per_packet_s=0.70e-3, per_byte_s=0.62e-6)

#: SPARCstation SLC (the storage agents) — slower than the SS2 client.
#: (Tuned against Table 1: queueing interference between the three agents
#: on the shared cable does part of the throttling, so the raw per-byte
#: cost is lower than a closed-form cycle model would suggest.)
SLC_SEND_COST = CostModel(per_packet_s=0.80e-3, per_byte_s=0.30e-6)
SLC_RECV_COST = CostModel(per_packet_s=0.80e-3, per_byte_s=0.30e-6)

#: Sun 4/390 (the NFS server): the fastest host in the study.
NFS_SERVER_SEND_COST = CostModel(per_packet_s=0.30e-3, per_byte_s=0.25e-6)
NFS_SERVER_RECV_COST = CostModel(per_packet_s=0.30e-3, per_byte_s=0.25e-6)

#: §4.1: "the S-bus interface is known to achieve lower data-rates than the
#: on-board interface" — CPU cost multiplier for packets through it.
SBUS_CPU_SCALE = 1.18

#: §3.1: "we had to incorporate a small wait loop between write operations."
#: Seconds the client idles between successive data packets to one agent.
WRITE_INTERPACKET_GAP_S = 23.0e-3

#: Per-packet CPU jitter (uniform ±fraction) modelling OS noise — gives the
#: tables their sample-to-sample spread, like the real measurements.
HOST_NOISE_FRACTION = 0.05

#: The shared departmental Ethernet carried "less than 5% of its capacity".
DEPARTMENTAL_BACKGROUND_LOAD = 0.04

#: Protocol timers (client side).
READ_TIMEOUT_S = 0.25
ACK_TIMEOUT_S = 0.50
OPEN_TIMEOUT_S = 0.50

#: NFS (Table 3): 8 KB block RPCs; each server write is synchronous and
#: drags metadata writes with it (data + indirect + inode on NFSv2).
NFS_BLOCK_SIZE = 8192
NFS_METADATA_WRITES = 2
NFS_READ_PIPELINE = 1

#: The abandoned TCP prototype (§3): stream reassembly forced "a significant
#: amount of data copying" because TCP "delivers data in a stream with no
#: message boundaries"; modelled as extra per-byte CPU on both ends plus a
#: select()-multiplexing cost per packet.  This pins the TCP prototype near
#: the paper's "never more than 45 % of the capacity of the Ethernet".
TCP_EXTRA_COPY_COST_PER_BYTE_S = 1.40e-6
TCP_SELECT_COST_PER_PACKET_S = 0.80e-3


def tcp_variant(cost: CostModel) -> CostModel:
    """A host cost model burdened with the TCP prototype's extra copying."""
    return CostModel(
        per_packet_s=cost.per_packet_s + TCP_SELECT_COST_PER_PACKET_S,
        per_byte_s=cost.per_byte_s + TCP_EXTRA_COPY_COST_PER_BYTE_S,
    )

#!/usr/bin/env python3
"""Partial failures: computed-copy redundancy in action (§2).

"To address the problem of partial failures, Swift stores data
redundantly" — one XOR parity unit per stripe on a dedicated parity agent,
tolerating a single failure per group.

This example writes an object with redundancy, crashes a storage agent,
keeps reading *and writing* through the failure (degraded mode), repairs
the host, rebuilds its contents from parity, and finally shows that an
unprotected object dies with its agent.

Run:  python examples/failure_recovery.py
"""

from repro import AgentFailure, build_local_swift


def main() -> None:
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()

    # --- a protected object -------------------------------------------------
    movie = client.open("movie", "w", parity=True)
    payload = bytes((i * 31 + 7) % 256 for i in range(256 * 1024))
    movie.write(payload)
    plan = movie._session.plan
    print(f"object striped over {plan.num_data_agents} data agents, "
          f"parity on {plan.parity_agent}")

    # --- crash a data agent --------------------------------------------------
    engine = movie.engine
    victim = engine.data_channels[1].agent_host
    deployment.crash_agent(victim)
    engine.mark_failed(1)
    engine.read_timeout_s = 0.01  # fail fast in this demo
    print(f"crashed {victim}")

    # Reads reconstruct the lost units from the surviving agents + parity.
    recovered = movie.pread(0, len(payload))
    print(f"degraded read : {'OK' if recovered == payload else 'CORRUPT'} "
          f"({movie.stats.reconstructed_units} units reconstructed)")

    # Writes keep parity consistent so the failed agent's data stays
    # recoverable even as the object changes.
    movie.pwrite(100_000, b"NEW FOOTAGE " * 1000)
    expected = bytearray(payload)
    expected[100_000:100_000 + 12_000] = b"NEW FOOTAGE " * 1000
    check = movie.pread(0, len(expected))
    print(f"degraded write: {'OK' if check == bytes(expected) else 'CORRUPT'}")

    # --- repair and rebuild ---------------------------------------------------
    deployment.replace_agent(victim)  # fresh host, empty disk
    env = deployment.env
    env.run(until=env.process(engine.rebuild_agent(1)))
    print(f"rebuilt {victim} from redundancy; failed agents now: "
          f"{engine.failed_agents}")
    final = movie.pread(0, len(expected))
    print(f"post-rebuild  : {'OK' if final == bytes(expected) else 'CORRUPT'}")
    movie.close()

    # --- contrast: an unprotected object ---------------------------------------
    doc = client.open("doc", "w")  # no parity
    doc.write(b"irreplaceable bytes" * 3000)
    victim2 = doc.engine.data_channels[0].agent_host
    deployment.crash_agent(victim2)
    doc.engine.read_timeout_s = 0.01
    doc.engine.max_retries = 2
    try:
        doc.pread(0, 100)
    except AgentFailure as exc:
        print(f"without redundancy the object is lost: {exc}")


if __name__ == "__main__":
    main()

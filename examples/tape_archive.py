#!/usr/bin/env python3
"""Alternative storage technologies: an archive on an array of DATs.

§7: "The Swift architecture also has the flexibility to use alternative
data storage technologies, such as arrays of digital audio tapes."  And
§6: a single RAID can never beat its controller, but "Swift can
concurrently drive a collection of Raids as high speed devices."

This example times a 256 MB archive restore from (a) one DAT drive,
(b) a Swift-striped array of eight DATs, and then shows the RAID
aggregation result on the §5 token ring.

Run:  python examples/tape_archive.py
"""

from repro.des import Environment
from repro.simdisk import DAT_DDS1, RaidArray, TapeDrive
from repro.sim import SimConfig, find_max_sustainable

MB = 1 << 20
KB = 1 << 10


def restore_from_tapes(num_drives: int, archive_size: int) -> float:
    """Seconds to stream an archive striped over ``num_drives`` DATs."""
    env = Environment()
    drives = [TapeDrive(env) for _ in range(num_drives)]
    share = archive_size // num_drives

    def reader(drive):
        yield from drive.transfer(0, share)

    for drive in drives:
        env.process(reader(drive))
    env.run()
    return env.now


def part1_tapes() -> None:
    archive_size = 256 * MB
    print("=" * 60)
    print(f"Part 1 — restoring a {archive_size // MB} MB archive from DAT")
    print(f"  drive: {DAT_DDS1.name}, "
          f"{DAT_DDS1.transfer_rate / 1000:.0f} KB/s streaming, "
          f"{DAT_DDS1.avg_position_s:.0f} s average locate")
    print("=" * 60)
    for drives in (1, 2, 4, 8):
        elapsed = restore_from_tapes(drives, archive_size)
        rate = archive_size / elapsed / 1000
        print(f"{drives} drive(s): {elapsed / 60:6.1f} minutes "
              f"({rate:6.0f} KB/s aggregate)")
    print()
    print("striping multiplies the streaming rate; the locate is paid "
          "once per drive, in parallel")


def part2_raids() -> None:
    print()
    print("=" * 60)
    print("Part 2 — Swift over a collection of RAIDs (gigabit ring)")
    print("=" * 60)

    def raid_factory(env, index, streams):
        return RaidArray(env, num_members=8, controller_rate=4 * MB,
                         stream=streams.stream(f"raid/{index}"))

    for raids in (1, 4):
        config = SimConfig(num_disks=raids, transfer_unit=256 * KB,
                           request_size=4 * MB, num_requests=120,
                           warmup_requests=12, seed=3)
        result = find_max_sustainable(config, iterations=6,
                                      storage_factory=raid_factory)
        label = "one array (controller-capped)" if raids == 1 \
            else f"Swift over {raids} arrays"
        print(f"{label}: {result.client_data_rate / MB:5.2f} MB/s sustained")
    print()
    print("each array's 4 MB/s controller is the ceiling for a")
    print("centralized system; Swift aggregates right past it (§6)")


def main() -> None:
    part1_tapes()
    part2_raids()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A miniature of the paper's two evaluations, runnable in seconds.

Part 1 replays the §4 prototype measurements (Swift vs local SCSI vs NFS,
then a second Ethernet) at reduced sample counts; part 2 runs the §5
token-ring simulation showing data-rate scaling in disks and transfer
units.

Run:  python examples/scaling_study.py
"""

from repro.baselines import LocalScsiBaseline, NfsBaseline
from repro.prototype import PrototypeTestbed
from repro.sim import SimConfig, find_max_sustainable

MB = 1 << 20
KB = 1 << 10


def part1_prototype() -> None:
    print("=" * 64)
    print("Part 1 — the Ethernet prototype (3 MB transfers, KB/s)")
    print("=" * 64)

    swift = PrototypeTestbed(seed=7)
    swift.prepare_object("obj", 3 * MB)
    swift_read = swift.measure_read("obj", 3 * MB)
    swift_write = PrototypeTestbed(seed=7).measure_write("obj", 3 * MB)

    scsi = LocalScsiBaseline(seed=7)
    scsi.prepare_file("f", 3 * MB)
    scsi_read = scsi.measure_read("f", 3 * MB)
    scsi_write = LocalScsiBaseline(seed=7).measure_write("f", 3 * MB)

    nfs = NfsBaseline(seed=7)
    nfs.prepare_file("f", 3 * MB)
    nfs_read = nfs.measure_read("f", 3 * MB)
    nfs_write = NfsBaseline(seed=7).measure_write("f", 3 * MB)

    print(f"{'system':<12} {'read':>8} {'write':>8}")
    print(f"{'Swift (3)':<12} {swift_read:>8.0f} {swift_write:>8.0f}")
    print(f"{'local SCSI':<12} {scsi_read:>8.0f} {scsi_write:>8.0f}")
    print(f"{'NFS':<12} {nfs_read:>8.0f} {nfs_write:>8.0f}")
    print()
    print(f"Swift vs SCSI write: {swift_write / scsi_write:.1f}x "
          f"(paper: ~2.8x)")
    print(f"Swift vs NFS  write: {swift_write / nfs_write:.1f}x "
          f"(paper: ~8x)")
    print(f"Swift vs NFS  read : {swift_read / nfs_read:.1f}x "
          f"(paper: ~1.9x)")

    dual = PrototypeTestbed(seed=7, second_ethernet=True)
    dual.prepare_object("obj", 3 * MB)
    dual_read = dual.measure_read("obj", 3 * MB)
    dual_write = PrototypeTestbed(seed=7, second_ethernet=True) \
        .measure_write("obj", 3 * MB)
    print()
    print(f"with a second Ethernet: read {dual_read:.0f} "
          f"(+{dual_read / swift_read - 1:.0%}), "
          f"write {dual_write:.0f} (+{dual_write / swift_write - 1:.0%})")
    print("(paper: reads +~25%, writes almost doubled)")


def part2_simulation() -> None:
    print()
    print("=" * 64)
    print("Part 2 — the gigabit token-ring simulation (max sustainable)")
    print("=" * 64)
    print(f"{'disks':>6} {'4KB unit':>12} {'32KB unit':>12}   (MB/s)")
    for disks in (2, 8, 32):
        row = []
        for unit in (4 * KB, 32 * KB):
            config = SimConfig(num_disks=disks, transfer_unit=unit,
                               request_size=128 * KB if unit == 4 * KB
                               else 1 * MB,
                               num_requests=150, warmup_requests=15, seed=7)
            result = find_max_sustainable(config, iterations=6)
            row.append(result.client_data_rate / 1e6)
        print(f"{disks:>6} {row[0]:>12.2f} {row[1]:>12.2f}")
    print()
    print("the data-rate scales with both the number of storage agents and")
    print("the transfer unit — §5.2's conclusion")


def main() -> None:
    part1_prototype()
    part2_simulation()


if __name__ == "__main__":
    main()

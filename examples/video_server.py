#!/usr/bin/env python3
"""Continuous-media sessions with admission control.

The paper's motivation (§1): "The goal of Swift is to support integrated
continuous multimedia in general purpose distributed systems" — DVI video
needs 1.2 MB/s, CD audio 1.4 Mb/s, full-frame colour video 20+ MB/s.

This example plays a video-server operator: it registers storage agents
with the mediator, then admits playback sessions until the resources run
out — demonstrating §2's session-oriented preallocation ("storage
mediators will reject any request with requirements it is unable to
satisfy") and the striping-unit policy (low rates get large units, high
rates small ones).

Run:  python examples/video_server.py
"""

from repro import AdmissionError, build_local_swift

MB = 1 << 20

# The paper's §1 data-rate menu.
STREAMS = [
    ("CD-quality audio", int(1.4e6 / 8)),       # 1.4 megabits/second
    ("DVI compressed video", int(1.2 * MB)),
    ("DVI compressed video", int(1.2 * MB)),
    ("full-frame colour video", 20 * MB),
    ("DVI compressed video", int(1.2 * MB)),
]


def main() -> None:
    # Eight agents, each able to deliver ~3 MB/s (a fast-for-1991 server).
    deployment = build_local_swift(num_agents=8, agent_bandwidth=3 * MB)
    mediator = deployment.mediator
    client = deployment.client()

    print(f"registered agents: {', '.join(mediator.agent_names)}")
    print(f"aggregate bandwidth: "
          f"{sum(mediator.agent(a).bandwidth for a in mediator.agent_names) / MB:.0f} MB/s")
    print()

    admitted = []
    for index, (label, rate) in enumerate(STREAMS):
        name = f"stream{index}"
        try:
            handle = client.open(name, "w", data_rate=float(rate),
                                 object_size=64 * MB)
        except AdmissionError as exc:
            print(f"REJECTED {label} ({rate / MB:.2f} MB/s): {exc}")
            continue
        plan = handle._session.plan
        print(f"admitted {label} ({rate / MB:.2f} MB/s): "
              f"{plan.num_data_agents} agents, "
              f"unit {plan.striping_unit // 1024} KB")
        admitted.append((label, handle))

    print()
    committed = sum(mediator.agent(a).committed_bandwidth
                    for a in mediator.agent_names)
    print(f"bandwidth now committed: {committed / MB:.1f} MB/s")

    # Write a short burst of 'frames' into the first admitted stream and
    # play it back to prove the data path works end to end.
    label, handle = admitted[0]
    frame = bytes(range(256)) * 32  # an 8 KB 'frame'
    for _ in range(64):
        handle.write(frame)
    handle.seek(0)
    playback = handle.read(64 * len(frame))
    print(f"{label}: wrote and played back 64 frames "
          f"({'OK' if playback == frame * 64 else 'CORRUPT'})")

    # Closing a session releases its reservations: the big stream that was
    # rejected earlier can now fit if enough capacity frees up.
    for _, handle in admitted:
        handle.close()
    print(f"after closing sessions, committed bandwidth: "
          f"{sum(mediator.agent(a).committed_bandwidth for a in mediator.agent_names) / MB:.1f} MB/s")
    big = client.open("late-show", "w", data_rate=float(20 * MB),
                      object_size=256 * MB)
    print("the 20 MB/s full-frame stream is admissible once the others "
          "released their reservations")
    big.close()


if __name__ == "__main__":
    main()

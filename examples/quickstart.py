#!/usr/bin/env python3
"""Quickstart: store and retrieve a Swift object.

Builds an in-process Swift deployment (three storage agents behind a
loopback interconnect), negotiates a session with the storage mediator,
and runs Unix-style file I/O through the real striping and transfer-
protocol code.

Run:  python examples/quickstart.py
"""

from repro import build_local_swift


def main() -> None:
    # A Swift system: mediator + three storage agents, each with its own
    # (simulated) local file system.
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()

    # Create an object.  The mediator picks the agents and striping unit
    # and hands the distribution agent a transfer plan.
    with client.open("greeting", "w") as f:
        payload = b"Exploiting Multiple I/O Streams to Provide High "\
                  b"Data-Rates\n" * 1000
        written = f.write(payload)
        print(f"wrote {written} bytes across "
              f"{len(f.engine.data_channels)} storage agents")
        print(f"striping unit: {f.engine.layout.striping_unit} bytes")

    # Re-open and read it back with seek/read semantics.
    with client.open("greeting", "r") as f:
        print(f"object size on reopen: {f.size} bytes")
        f.seek(59)  # second line
        line = f.read(59)
        print(f"second line: {line.decode().strip()!r}")
        f.seek(-59, 2)  # SEEK_END
        print(f"last line identical: {f.read(59) == line}")

    # Where did the bytes actually go?  Inspect the agents' local files.
    for name, agent in sorted(deployment.agents.items()):
        sizes = {f: agent.filesystem.file_size(f)
                 for f in agent.filesystem.list_files()}
        print(f"{name}: {sizes}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Small objects on Swift: a record store over the buffered layer.

§7: "Even though Swift was designed with very large objects in mind, it
can also handle small objects, such as those encountered in normal file
systems.  The penalties incurred are one round trip time for a short
network message..."

Per-record round trips would make a record-at-a-time workload miserable;
the :class:`~repro.core.buffered.BufferedSwiftFile` write-behind /
read-ahead layer coalesces them.  This example appends 5 000 fixed-size
records both ways and counts the protocol packets each approach costs.

Run:  python examples/record_store.py
"""

import struct

from repro import build_local_swift
from repro.core import BufferedSwiftFile

RECORD_SIZE = 100
NUM_RECORDS = 5_000


def make_record(index: int) -> bytes:
    header = struct.pack(">I", index)
    return header + bytes((index + j) % 256 for j in range(RECORD_SIZE - 4))


def append_records(handle) -> int:
    for index in range(NUM_RECORDS):
        handle.write(make_record(index))
    if hasattr(handle, "flush"):
        handle.flush()
    return handle.raw.stats.packets_sent if hasattr(handle, "raw") \
        else handle.stats.packets_sent


def main() -> None:
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()

    plain = client.open("plain-log", "w")
    plain_packets = append_records(plain)

    buffered = BufferedSwiftFile(client.open("buffered-log", "w"),
                                 buffer_size=64 * 1024)
    buffered_packets = append_records(buffered)

    print(f"{NUM_RECORDS} x {RECORD_SIZE}-byte records appended")
    print(f"  unbuffered : {plain_packets:>6} packets "
          f"({plain_packets / NUM_RECORDS:.1f} per record)")
    print(f"  buffered   : {buffered_packets:>6} packets "
          f"({buffered_packets / NUM_RECORDS:.2f} per record)")
    print(f"  coalescing factor: {plain_packets / buffered_packets:.0f}x")
    print()

    # Random record lookups through the read-ahead buffer.
    buffered.seek(0)
    for index in (0, 17, 4_999, 2_500):
        buffered.seek(index * RECORD_SIZE)
        record = buffered.read(RECORD_SIZE)
        stored = struct.unpack(">I", record[:4])[0]
        assert stored == index, (stored, index)
        print(f"  record {index:>5}: OK")

    plain.close()
    buffered.close()
    print()
    print("sequential small I/O belongs behind a buffer; Swift's round "
          "trips are then paid per 64 KB, not per record (§7)")


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The project is configured in pyproject.toml; this file exists so that
fully offline environments (no `wheel` package available, so PEP 660
editable installs fail) can still do::

    python setup.py develop --user

which needs only setuptools.
"""

from setuptools import setup

setup()
